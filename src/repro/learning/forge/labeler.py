"""Forked-run labeling: every method's ideal opt level from (nearly) one run.

The label the forge needs for a training row is *the ideal optimization
level of method m under this program×input*: the level that, committed at
*m*'s first invocation (the moment the evolvable VM applies predicted
strategies), minimizes ``method_cycles[m] + m's compile cycles``. The
naive way to obtain it — :func:`label_naive` — re-executes the whole
program once per (method, level) pair: ``3·M + 1`` full runs per input.

:func:`label_forked` produces bit-identical labels from one instrumented
parent run plus cheap partial work, using three mechanisms:

1. **Fork snapshots.** The parent runs all-baseline on the reference
   engine with the interpreter's fork hook armed: at each method's first
   invocation — before any of its compile cycles are charged — the
   resumable VM state (frames with the CALL rewound, clock, sampler,
   profile, heap/rng, method states) is captured. A child for (m, L)
   restores the snapshot, forces *m* to L via the first-invocation hook,
   and resumes: it re-executes only the run's *suffix*, yet its profile is
   bit-identical to a naive forced run because the prefix it inherited is
   bit-identical by construction.

2. **Shadow accounts.** When a tier's pass pipeline leaves *m*'s code
   unchanged (level 0 runs no passes, so always; higher tiers
   occasionally), a forced run differs from the parent only in the speed
   factor scaling *m*'s per-instruction costs. The parent maintains
   :class:`~repro.vm.interpreter.ShadowAccount` chains that replay the
   exact cost expressions at the shadow speed, so those (m, L) labels cost
   *zero* extra execution.

3. **Shared code caches.** Parent and children share one
   :class:`~repro.vm.opt.jit.JITCompiler`; virtual compile cycles are
   charged per run regardless (deterministic cost model), so host-side
   codegen is paid once per (method, level) per program rather than once
   per run — and amortizes further across inputs of the same program when
   the caller passes one ``jit`` to several :func:`label_forked` calls.

The differential gate (``tests/test_forge_labeler.py``) asserts the two
labelers agree bit-for-bit on labels, per-level virtual cycles, baseline
profiles, and heap effects over a seeded corpus, including fuel-exhaustion
and fault edges.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from random import Random

from ...vm.config import BASELINE_LEVEL, OPT_LEVELS, VMConfig
from ...vm.errors import VMError
from ...vm.heap import Heap, HeapStats
from ...vm.interpreter import Interpreter, ShadowAccount, _Frame, _MethodState
from ...vm.intrinsics import IntrinsicContext
from ...vm.opt.jit import JITCompiler
from ...vm.profiles import RunProfile
from ...vm.program import Program
from ...vm.sampler import Sampler

#: Forge runs are plain adaptive-free executions with a generous-but-finite
#: fuel budget (mirrors the fuzz harness's safety margin over the corpus).
FORGE_CONFIG = VMConfig(max_instructions=2_000_000)

#: Levels a method can be *forced* to at first invocation; the baseline
#: outcome falls out of the parent run for free.
FORCED_LEVELS: tuple[int, ...] = tuple(
    level for level in OPT_LEVELS if level > BASELINE_LEVEL
)


@dataclass(frozen=True)
class LevelOutcome:
    """What forcing one method to one level cost, per the virtual clock."""

    level: int
    cycles: float
    compile_cycles: float
    fault: str | None = None
    #: True when the outcome was shadow-derived from the parent run rather
    #: than measured by executing a (partial) forced run.
    derived: bool = False

    @property
    def cost(self) -> float:
        """The quantity the label minimizes: execution + compile cycles."""
        return self.cycles + self.compile_cycles


@dataclass
class MethodLabel:
    """All per-level outcomes for one method, plus the induced label."""

    method: str
    outcomes: dict[int, LevelOutcome] = field(default_factory=dict)

    @property
    def ideal(self) -> int | None:
        """argmin-cost level (ties resolve to the lower level)."""
        best: LevelOutcome | None = None
        for level in sorted(self.outcomes):
            outcome = self.outcomes[level]
            if outcome.fault is not None:
                continue
            if best is None or outcome.cost < best.cost:
                best = outcome
        return None if best is None else best.level


@dataclass
class RunLabels:
    """The labeler's verdict for one program×input pair."""

    program: str
    args: tuple
    fault: str | None
    result: object | None
    output: tuple[str, ...]
    #: The all-baseline profile (feature source for training rows); None
    #: when the baseline run itself faulted.
    profile: RunProfile | None
    labels: dict[str, MethodLabel]


def _forced_interp(
    program: Program,
    config: VMConfig,
    rng_seed: int,
    jit: JITCompiler | None,
    method: str | None = None,
    level: int | None = None,
) -> Interpreter:
    hook = None
    if method is not None:

        def hook(name: str, _m: str = method, _lv: int = level) -> int | None:
            return _lv if name == _m else None

    return Interpreter(
        program,
        config=config,
        rng_seed=rng_seed,
        jit=jit,
        first_invocation_hook=hook,
        engine="reference",
    )


def _outcome_from_profile(
    profile: RunProfile, method: str, level: int
) -> LevelOutcome:
    compile_cycles = 0.0
    for event in profile.compile_events:
        if event.method == method:
            compile_cycles += event.cycles
    return LevelOutcome(
        level=level,
        cycles=profile.method_cycles.get(method, 0.0),
        compile_cycles=compile_cycles,
    )


def _fault_outcome(level: int, fault: str) -> LevelOutcome:
    return LevelOutcome(
        level=level, cycles=float("inf"), compile_cycles=0.0, fault=fault
    )


# ---------------------------------------------------------------------------
# Naive labeler: one full re-execution per (method, level)
# ---------------------------------------------------------------------------


def label_naive(
    program: Program,
    args: tuple = (),
    *,
    config: VMConfig = FORGE_CONFIG,
    rng_seed: int = 0,
    levels: tuple[int, ...] = FORCED_LEVELS,
) -> RunLabels:
    """Label by re-running the whole program once per (method, level).

    ``3·M + 1`` full executions per input, each with a fresh
    :class:`JITCompiler` (the independent-runs baseline the forked labeler
    is differentially checked against and benchmarked over).
    """
    base = _forced_interp(program, config, rng_seed, JITCompiler(program, config))
    fault = None
    result = None
    try:
        base.run(args)
        result = base.result
    except VMError as exc:
        fault = type(exc).__name__
    if fault is not None:
        return RunLabels(
            program.name, tuple(args), fault, None, tuple(base.output), None, {}
        )
    labels: dict[str, MethodLabel] = {}
    for method in sorted(base.profile.invocations):
        outcomes = {
            BASELINE_LEVEL: _outcome_from_profile(
                base.profile, method, BASELINE_LEVEL
            )
        }
        for level in levels:
            child = _forced_interp(
                program, config, rng_seed, JITCompiler(program, config),
                method, level,
            )
            child_fault = None
            try:
                child.run(args)
            except VMError as exc:
                child_fault = type(exc).__name__
            outcomes[level] = (
                _fault_outcome(level, child_fault)
                if child_fault is not None
                else _outcome_from_profile(child.profile, method, level)
            )
        labels[method] = MethodLabel(method, outcomes)
    return RunLabels(
        program.name,
        tuple(args),
        None,
        result,
        tuple(base.output),
        base.profile,
        labels,
    )


# ---------------------------------------------------------------------------
# Forked labeler: one parent run + shadow accounts + suffix-only children
# ---------------------------------------------------------------------------


class _Snapshot:
    """Resumable VM state captured at one method's first invocation.

    Hand-rolled copying throughout: the VM's mutable state is a handful of
    flat dicts, float scalars, an RNG state tuple, and heap counters —
    generic ``copy.deepcopy`` spends more time traversing the Mersenne
    state than the labeler spends executing small children. Only frame
    locals/stacks need a real deepcopy (MiniLang arrays are Python lists,
    possibly aliased across frames, so one shared memo preserves aliasing).
    """

    __slots__ = (
        "frames",
        "states",
        "profile",
        "sampler_counts",
        "sampler_next_tick",
        "rng_state",
        "output",
        "burned",
        "gc_cycles",
        "heap_policy",
        "heap_model",
        "heap_live",
        "heap_nursery",
        "heap_stats",
        "clock",
        "executed",
        "queue",
    )


def _copy_profile(profile: RunProfile) -> RunProfile:
    return RunProfile(
        samples=dict(profile.samples),
        method_cycles=dict(profile.method_cycles),
        method_work=dict(profile.method_work),
        final_levels=dict(profile.final_levels),
        compile_events=list(profile.compile_events),
        total_cycles=profile.total_cycles,
        compile_cycles=profile.compile_cycles,
        instructions_executed=profile.instructions_executed,
        invocations=dict(profile.invocations),
        gc_policy=profile.gc_policy,
        gc_count=profile.gc_count,
        gc_pause_cycles=profile.gc_pause_cycles,
        allocated_bytes=profile.allocated_bytes,
        allocation_count=profile.allocation_count,
        peak_live_bytes=profile.peak_live_bytes,
    )


def _capture(interp: Interpreter) -> _Snapshot:
    snap = _Snapshot()
    snap.states = {
        name: (state.compiled, state.invocations)
        for name, state in interp._states.items()
    }
    # One shared memo across all frames' locals and stacks so array values
    # aliased between activation records stay aliased in the copy.
    frame_memo: dict = {}
    snap.frames = [
        (
            frame.code,
            frame.pc,
            copy.deepcopy(frame.locals, frame_memo),
            copy.deepcopy(frame.stack, frame_memo),
            frame.name,
            frame.speed,
        )
        for frame in interp._frames
    ]
    snap.profile = _copy_profile(interp.profile)
    sampler = interp.sampler
    snap.sampler_counts = dict(sampler.counts)
    snap.sampler_next_tick = sampler._next_tick
    ctx = interp.intrinsic_ctx
    snap.rng_state = ctx.rng.getstate()
    snap.output = list(ctx.output)
    snap.burned = ctx.burned
    snap.gc_cycles = ctx.gc_cycles
    heap = ctx.heap
    snap.heap_policy = heap.policy
    snap.heap_model = heap.model
    snap.heap_live = heap.live_bytes
    snap.heap_nursery = heap.nursery_bytes
    stats = heap.stats
    snap.heap_stats = (
        stats.allocated_bytes,
        stats.allocation_count,
        stats.peak_live_bytes,
        stats.gc_count,
        stats.gc_pause_cycles,
    )
    snap.clock = interp.clock
    snap.executed = interp._resume_executed
    snap.queue = tuple(interp._recompile_queue)
    return snap


def _spawn_child(
    program: Program,
    args: tuple,
    config: VMConfig,
    rng_seed: int,
    jit: JITCompiler,
    snap: _Snapshot,
    method: str,
    level: int,
    stop_target: int = 0,
    shadow_accounts: list[ShadowAccount] | None = None,
) -> tuple[Interpreter, str | None]:
    """Restore *snap* into a fresh interpreter forcing *method*→*level* and
    run it out (to completion, or — with *stop_target* > 0 — to the forced
    method's last outer exit, where its cycle account is final).

    *shadow_accounts* lets one child stand in for every level sharing the
    same compiled code: the accounts replay the child's per-instruction
    cost chain for *method* at the sibling levels' speed factors.
    """
    interp = _forced_interp(program, config, rng_seed, jit, method, level)
    if shadow_accounts:
        interp._shadow = {method: shadow_accounts}
    fault = None
    if not snap.frames:
        # Fork at the entry method: the snapshot is the pristine pre-run
        # state, so the child is simply a fresh forced run (warm jit memo).
        try:
            interp.run(args)
        except VMError as exc:
            fault = type(exc).__name__
        return interp, fault
    interp.clock = snap.clock
    interp._resume_executed = snap.executed
    interp.profile = _copy_profile(snap.profile)
    sampler = Sampler(config.sample_interval)
    sampler.counts = dict(snap.sampler_counts)
    sampler._next_tick = snap.sampler_next_tick
    interp.sampler = sampler
    heap = Heap(snap.heap_policy, snap.heap_model)
    heap.live_bytes = snap.heap_live
    heap.nursery_bytes = snap.heap_nursery
    allocated, count, peak, gc_count, gc_pause = snap.heap_stats
    heap.stats = HeapStats(
        allocated_bytes=allocated,
        allocation_count=count,
        peak_live_bytes=peak,
        gc_count=gc_count,
        gc_pause_cycles=gc_pause,
    )
    rng = Random(0)
    rng.setstate(snap.rng_state)
    interp.intrinsic_ctx = IntrinsicContext(
        rng=rng,
        output=list(snap.output),
        burned=snap.burned,
        gc_cycles=snap.gc_cycles,
        heap=heap,
    )
    states: dict[str, _MethodState] = {}
    for name, (compiled, invocations) in snap.states.items():
        state = _MethodState(name, compiled)
        state.invocations = invocations
        states[name] = state
    interp._states = states
    frame_memo: dict = {}
    frames: list[_Frame] = []
    for code, pc, locals_, stack, name, speed in snap.frames:
        frame = _Frame.__new__(_Frame)
        frame.code = code
        frame.pc = pc
        frame.locals = copy.deepcopy(locals_, frame_memo)
        frame.stack = copy.deepcopy(stack, frame_memo)
        frame.name = name
        frame.speed = speed
        frames.append(frame)
    interp._frames = frames
    interp._recompile_queue = list(snap.queue)
    if stop_target > 0:
        interp._stop_plan = (method, stop_target)
    try:
        interp.resume()
    except VMError as exc:
        fault = type(exc).__name__
    return interp, fault


def label_forked(
    program: Program,
    args: tuple = (),
    *,
    config: VMConfig = FORGE_CONFIG,
    rng_seed: int = 0,
    levels: tuple[int, ...] = FORCED_LEVELS,
    jit: JITCompiler | None = None,
    early_stop: bool = True,
    plan_cache: dict[str, tuple] | None = None,
) -> RunLabels:
    """Label every method from one parent run plus suffix-only children.

    Pass the same *jit* across several inputs of one program to amortize
    host-side codegen (virtual compile-cycle charges are unaffected), and
    the same *plan_cache* dict to reuse the per-method level partition
    (shadow levels vs. identical-code child groups) — the partition depends
    only on the compiled code, never on the input.
    With *early_stop* (the default) children halt at the forced method's
    last outer exit, where its accounts are final; the differential suite
    checks both modes against :func:`label_naive` (full-suffix children
    additionally reproduce the naive run's entire profile bit-for-bit).
    """
    if jit is None:
        jit = JITCompiler(program, config)
    snapshots: dict[str, _Snapshot] = {}
    shadow: dict[str, list[ShadowAccount]] = {}
    child_plan: dict[str, tuple[tuple[int, ...], ...]] = {}

    def _plan(name: str) -> tuple:
        # Partition this method's candidate levels by compiled code: levels
        # whose code matches the baseline are shadow-derived inside the
        # parent; the rest group by identical code, one child per group
        # (the group's first level executes, siblings are shadow-derived
        # inside that child).
        baseline = jit.compile(name, BASELINE_LEVEL)
        spec: list[tuple[int, float]] = []
        groups: list[list[int]] = []
        by_code: dict = {}
        for level in levels:
            compiled = jit.compile(name, level)
            if (
                compiled.code == baseline.code
                and compiled.num_locals == baseline.num_locals
            ):
                spec.append((level, compiled.speed_factor))
            else:
                key = (compiled.code, compiled.num_locals)
                group = by_code.get(key)
                if group is None:
                    by_code[key] = group = [level]
                    groups.append(group)
                else:
                    group.append(level)
        return tuple(spec), tuple(tuple(group) for group in groups)

    def fork_hook(name: str, interp: Interpreter) -> None:
        plan = None if plan_cache is None else plan_cache.get(name)
        if plan is None:
            plan = _plan(name)
            if plan_cache is not None:
                plan_cache[name] = plan
        spec, groups = plan
        if spec:
            # Accounts accumulate per run, so they are always fresh; only
            # the (level, speed) partition is reused across inputs.
            shadow[name] = [ShadowAccount(lv, sp) for lv, sp in spec]
        child_plan[name] = groups
        if groups:
            # Only levels whose code actually changes need a resumable
            # state; shadow-covered levels never execute a child.
            snapshots[name] = _capture(interp)

    parent = Interpreter(
        program, config=config, rng_seed=rng_seed, jit=jit, engine="reference"
    )
    parent._fork_hook = fork_hook
    parent._shadow = shadow
    outer_entries: dict[str, int] = {}
    parent._outer_entries = outer_entries
    fault = None
    result = None
    try:
        parent.run(args)
        result = parent.result
    except VMError as exc:
        fault = type(exc).__name__
    if fault is not None:
        return RunLabels(
            program.name, tuple(args), fault, None, tuple(parent.output), None, {}
        )
    labels: dict[str, MethodLabel] = {}
    for method in sorted(parent.profile.invocations):
        outcomes = {
            BASELINE_LEVEL: _outcome_from_profile(
                parent.profile, method, BASELINE_LEVEL
            )
        }
        base_compile = 0.0
        for event in parent.profile.compile_events:
            if event.method == method:
                base_compile += event.cycles
        for account in shadow.get(method, ()):
            # Same event order as a forced run: baseline compile, then the
            # forced tier's compile.
            compile_cycles = base_compile + jit.compile(
                method, account.level
            ).compile_cycles
            outcomes[account.level] = LevelOutcome(
                level=account.level,
                cycles=account.cycles,
                compile_cycles=compile_cycles,
                derived=True,
            )
        stop_target = outer_entries.get(method, 0) if early_stop else 0
        for group in child_plan.get(method, ()):
            lead = group[0]
            siblings = [
                ShadowAccount(lv, jit.compile(method, lv).speed_factor)
                for lv in group[1:]
            ]
            child, child_fault = _spawn_child(
                program, args, config, rng_seed, jit, snapshots[method],
                method, lead, stop_target=stop_target,
                shadow_accounts=siblings,
            )
            if child_fault is not None:
                # Identical code ⇒ identical execution ⇒ the whole group
                # faults exactly as its lead does.
                for lv in group:
                    outcomes[lv] = _fault_outcome(lv, child_fault)
                continue
            outcomes[lead] = _outcome_from_profile(child.profile, method, lead)
            for account in siblings:
                outcomes[account.level] = LevelOutcome(
                    level=account.level,
                    cycles=account.cycles,
                    compile_cycles=base_compile
                    + jit.compile(method, account.level).compile_cycles,
                    derived=True,
                )
        labels[method] = MethodLabel(method, outcomes)
    return RunLabels(
        program.name,
        tuple(args),
        None,
        result,
        tuple(parent.output),
        parent.profile,
        labels,
    )


# ---------------------------------------------------------------------------
# Differential comparison
# ---------------------------------------------------------------------------


def _profile_fingerprint(profile: RunProfile | None) -> tuple | None:
    if profile is None:
        return None
    return (
        sorted(profile.samples.items()),
        sorted(profile.method_cycles.items()),
        sorted(profile.method_work.items()),
        sorted(profile.final_levels.items()),
        tuple(profile.compile_events),
        profile.total_cycles,
        profile.compile_cycles,
        profile.instructions_executed,
        sorted(profile.invocations.items()),
        profile.gc_policy,
        profile.gc_count,
        profile.gc_pause_cycles,
        profile.allocated_bytes,
        profile.allocation_count,
        profile.peak_live_bytes,
    )


def labels_equal(a: RunLabels, b: RunLabels) -> bool:
    """Bitwise equivalence of two labelings (the differential gate).

    Compares faults, results, output, the full baseline profile, and every
    per-method per-level outcome's (cycles, compile cycles, fault, ideal) —
    exact float equality throughout. ``derived`` provenance is ignored:
    it records *how* an outcome was obtained, not what it is.
    """
    if (
        a.program != b.program
        or a.args != b.args
        or a.fault != b.fault
        or a.result != b.result
        or a.output != b.output
    ):
        return False
    if _profile_fingerprint(a.profile) != _profile_fingerprint(b.profile):
        return False
    if set(a.labels) != set(b.labels):
        return False
    for method, la in a.labels.items():
        lb = b.labels[method]
        if la.ideal != lb.ideal or set(la.outcomes) != set(lb.outcomes):
            return False
        for level, oa in la.outcomes.items():
            ob = lb.outcomes[level]
            if (
                oa.cycles != ob.cycles
                or oa.compile_cycles != ob.compile_cycles
                or oa.fault != ob.fault
            ):
                return False
    return True
