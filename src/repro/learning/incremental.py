"""Incremental model wrapper: accumulate observations, refit on demand.

The paper separates learning into *online lightweight data collection*
(append the run's feature vector and observed label) and *offline model
construction* (rebuild the classification tree after the run ends). This
wrapper implements that split strictly: :meth:`observe` is O(1)
bookkeeping, :meth:`refit` rebuilds the tree from the accumulated
history, and :meth:`predict` **never trains** — it serves the last
fitted tree (possibly stale) or declines. Prediction sits on the
run-*start* hot path; paying training cost there would invert the
paper's whole cost model, so an implicit refit-on-predict is not merely
avoided but impossible by construction
(``tests/test_learning_crossval.py`` pins this with a regression test).
"""

from __future__ import annotations

from ..xicl.features import FeatureVector
from .crossval import cross_validated_accuracy
from .dataset import Dataset
from .matrix import MatrixCache
from .tree import ENGINES, ClassificationTree, TreeParams


class IncrementalClassifier:
    """A classification tree that grows with the run history."""

    def __init__(
        self,
        params: TreeParams = TreeParams(),
        min_rows: int = 2,
        engine: str = "auto",
        matrix_cache: MatrixCache | None = None,
    ):
        if engine not in ENGINES:
            raise ValueError(
                f"engine must be 'auto', 'fast', or 'reference', got {engine!r}"
            )
        self.params = params
        self.min_rows = min_rows
        self.engine = engine
        self.dataset = Dataset()
        #: Shared presort cache: a ModelBuilder passes one cache to all of
        #: its per-method classifiers so identical feature matrices are
        #: presorted once per refit pass, not once per method.
        self.matrix_cache = matrix_cache
        self._tree: ClassificationTree | None = None
        self._stale = True
        #: Number of tree fits performed (regression guard: prediction
        #: must never bump this).
        self.fit_count = 0

    # -- online stage ---------------------------------------------------------
    def observe(self, vector: FeatureVector, label: object) -> None:
        """Record one (input features, observed label) pair."""
        self.dataset.add(vector, label)
        self._stale = True

    @property
    def n_observations(self) -> int:
        return len(self.dataset)

    def trim_history(self, keep_last: int) -> int:
        """Forget all but the last *keep_last* observations.

        The drift response path: when this method's regime shifted, the
        pre-shift rows actively mislead the tree, so the caller trims to
        the recent window and refits. Returns the rows dropped; marks
        the model stale only if anything was dropped.
        """
        dropped = self.dataset.truncate_to_last(keep_last)
        if dropped:
            self._stale = True
        return dropped

    # -- offline stage --------------------------------------------------------
    def refit(self) -> None:
        """Rebuild the tree from all accumulated observations.

        The only place training happens. With fewer than ``min_rows``
        observations the previous tree (if any) is kept.
        """
        if len(self.dataset) >= self.min_rows:
            matrix = (
                self.matrix_cache.get(self.dataset)
                if self.matrix_cache is not None and self.engine != "reference"
                else None
            )
            self._tree = ClassificationTree(self.params, engine=self.engine).fit(
                self.dataset, matrix=matrix
            )
            self.fit_count += 1
        self._stale = False

    def adopt_tree(self, tree: ClassificationTree) -> None:
        """Install a tree fitted elsewhere (the parallel offline path)."""
        self._tree = tree
        self._stale = False

    @property
    def is_fitted(self) -> bool:
        return self._tree is not None

    @property
    def stale(self) -> bool:
        """True when observations arrived after the last :meth:`refit`."""
        return self._stale

    @property
    def tree(self) -> ClassificationTree | None:
        """The last fitted tree (stale or fresh), or None."""
        return self._tree

    def predict(self, vector: FeatureVector) -> object | None:
        """Predicted label from the **last fitted** tree, or None.

        Never trains: a stale model predicts from its previous tree, an
        unfitted model declines. Callers refit explicitly at run end.
        """
        if self._tree is None:
            return None
        return self._tree.predict(vector)

    def used_features(self) -> tuple[str, ...]:
        if self._tree is None:
            return ()
        return self._tree.used_features()

    def cv_accuracy(self, k: int = 5, seed: int = 0) -> float:
        """Cross-validated accuracy over the accumulated history."""
        return cross_validated_accuracy(
            self.dataset, self.params, k=k, seed=seed, engine=self.engine
        )

    def render(self) -> str:
        if self._tree is None:
            return "<insufficient history>"
        return self._tree.render()
