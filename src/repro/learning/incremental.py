"""Incremental model wrapper: accumulate observations, refit on demand.

The paper separates learning into *online lightweight data collection*
(append the run's feature vector and observed label) and *offline model
construction* (rebuild the classification tree after the run ends). This
wrapper implements that split: :meth:`observe` is O(1) bookkeeping;
:meth:`refit` rebuilds the tree from the accumulated history.
"""

from __future__ import annotations

from ..xicl.features import FeatureVector
from .crossval import cross_validated_accuracy
from .dataset import Dataset
from .tree import ClassificationTree, TreeParams


class IncrementalClassifier:
    """A classification tree that grows with the run history."""

    def __init__(self, params: TreeParams = TreeParams(), min_rows: int = 2):
        self.params = params
        self.min_rows = min_rows
        self.dataset = Dataset()
        self._tree: ClassificationTree | None = None
        self._stale = True

    # -- online stage ---------------------------------------------------------
    def observe(self, vector: FeatureVector, label: object) -> None:
        """Record one (input features, observed label) pair."""
        self.dataset.add(vector, label)
        self._stale = True

    @property
    def n_observations(self) -> int:
        return len(self.dataset)

    # -- offline stage --------------------------------------------------------
    def refit(self) -> None:
        """Rebuild the tree from all accumulated observations."""
        if len(self.dataset) >= self.min_rows:
            self._tree = ClassificationTree(self.params).fit(self.dataset)
        self._stale = False

    @property
    def is_fitted(self) -> bool:
        return self._tree is not None

    def _ensure_fresh(self) -> None:
        if self._stale:
            self.refit()

    def predict(self, vector: FeatureVector) -> object | None:
        """Predicted label, or None when the model has too little history."""
        self._ensure_fresh()
        if self._tree is None:
            return None
        return self._tree.predict(vector)

    def used_features(self) -> tuple[str, ...]:
        self._ensure_fresh()
        if self._tree is None:
            return ()
        return self._tree.used_features()

    def cv_accuracy(self, k: int = 5, seed: int = 0) -> float:
        """Cross-validated accuracy over the accumulated history."""
        return cross_validated_accuracy(self.dataset, self.params, k=k, seed=seed)

    def render(self) -> str:
        self._ensure_fresh()
        if self._tree is None:
            return "<insufficient history>"
        return self._tree.render()
