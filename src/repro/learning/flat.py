"""Flattened trees: array-form prediction for the run-start hot path.

A fitted :class:`~repro.learning.tree.ClassificationTree` predicts by
chasing ``Node`` objects — fine offline, but the evolvable VM queries
*every* method's tree once at the start of every production run, where
attribute traffic and per-tree feature-vector projection add up. This
module compiles fitted trees into flat parallel arrays (feature index,
threshold, child offsets, missing-value direction) and batches the
per-run query:

- :class:`FlatTree` — one tree as arrays; ``predict_values`` walks
  integer indices only and is exactly equivalent to
  ``ClassificationTree.predict_values`` (same splits, same missing-value
  routing to the larger child).
- :class:`FlatForest` — every method's flat tree over one shared column
  universe. ``predict_all`` projects the input feature vector **once**
  and routes it through all trees in a single pass.
- **Batched inference** (``predict_batch`` / ``predict_values_batch``) —
  the serving hot path hands the forest a whole *matrix* of queries at
  once instead of re-descending every tree per row. Two tiers answer it:

  1. ``FlatTree.predict_values_batch`` is the portable **level-
     synchronous kernel**: the live query set is partitioned by tree
     node at each depth level, so every node's split parameters are
     read exactly once per level no matter how many rows sit at it.
  2. ``FlatForest.predict_batch`` compiles (lazily, once per forest)
     a **specialized batch program** — the whole forest emitted as one
     generated function whose row loop loads each used column into a
     local once and runs every tree as nested ``if``/``else`` with the
     missing-value routing folded into short-circuit guards. This is
     the same move the execution side makes in
     :mod:`repro.vm.closures` (compile the structure once, then run
     straight-line Python), and it is what clears the 2x batch-speedup
     bar that pure array traversal cannot. Trees too deep to inline
     (or a forest whose codegen fails for any reason) fall back to the
     level-synchronous kernel.

  Per-row decisions (tie-breaks, missing-feature routing) are
  byte-for-byte the ones ``predict_values`` makes in both tiers, so
  batch results are bit-identical to the per-row path — a hypothesis
  suite asserts it.

Flattening happens off the critical path (at ``refit`` time); the
startup path only reads arrays. The batch program compiles on the
first ``predict_batch`` call so per-run training loops, which never
batch, never pay for codegen.
"""

from __future__ import annotations

from ..xicl.features import FeatureKind, FeatureVector

#: Sentinel feature index marking a leaf slot.
_LEAF = -1

#: Types whose ``repr`` round-trips to an equal object of the same type,
#: safe to inline as literals in generated batch code. Anything else
#: (e.g. enum members, exotic numerics) is routed through the constant
#: pool so the generated program returns the *original* object.
_LITERAL_TYPES = (int, str, bool, float, type(None))

#: Trees deeper than this are not inlined into the generated batch
#: program (nesting depth is bounded by the tokenizer's indent limit);
#: they answer through the level-synchronous array kernel instead.
_MAX_INLINE_DEPTH = 60


class FlatTree:
    """One fitted tree compiled to parallel arrays (preorder node ids)."""

    __slots__ = ("feature", "numeric", "threshold", "left", "right",
                 "missing_left", "label", "columns")

    def __init__(self, root, columns: tuple[str, ...]):
        self.columns = columns
        self.feature: list[int] = []
        self.numeric: list[bool] = []
        self.threshold: list = []
        self.left: list[int] = []
        self.right: list[int] = []
        self.missing_left: list[bool] = []
        self.label: list = []
        self._compile(root)

    def _compile(self, node) -> int:
        slot = len(self.feature)
        if node.split is None:
            self.feature.append(_LEAF)
            self.numeric.append(False)
            self.threshold.append(None)
            self.left.append(_LEAF)
            self.right.append(_LEAF)
            self.missing_left.append(False)
            self.label.append(node.label)
            return slot
        self.feature.append(node.split.column_index)
        self.numeric.append(node.split.kind is FeatureKind.NUMERIC)
        self.threshold.append(node.split.threshold)
        self.left.append(0)   # patched below
        self.right.append(0)
        self.missing_left.append(node.left.size >= node.right.size)
        self.label.append(node.label)
        self.left[slot] = self._compile(node.left)
        self.right[slot] = self._compile(node.right)
        return slot

    @property
    def n_nodes(self) -> int:
        return len(self.feature)

    def depth(self) -> int:
        """Maximum root-to-leaf depth (0 for a single-leaf tree).

        Slots are preorder (parents before children), so one forward
        sweep suffices — no recursion, no stack.
        """
        feature, left, right = self.feature, self.left, self.right
        depths = [0] * len(feature)
        deepest = 0
        for i, f in enumerate(feature):
            d = depths[i]
            if f == _LEAF:
                if d > deepest:
                    deepest = d
            else:
                depths[left[i]] = d + 1
                depths[right[i]] = d + 1
        return deepest

    def predict_values(self, values) -> object:
        """Predict from values aligned to this tree's training columns."""
        feature = self.feature
        i = 0
        while feature[i] != _LEAF:
            value = values[feature[i]]
            if value is None:
                go_left = self.missing_left[i]
            elif self.numeric[i]:
                go_left = value <= self.threshold[i]
            else:
                go_left = value == self.threshold[i]
            i = self.left[i] if go_left else self.right[i]
        return self.label[i]

    def predict_values_batch(self, rows) -> list:
        """Predict every row of *rows* in one level-synchronous pass.

        *rows* is a sequence of value tuples aligned to this tree's
        (possibly forest-remapped) feature indices. The live query set is
        partitioned by node per depth level: each node's split parameters
        load once per level and route every row sitting at that node, so
        the per-row inner loop is two subscripts, one comparison, and one
        append. Row-level routing (missing values to the larger child,
        numeric ``<=`` vs. categorical ``==``) is exactly
        :meth:`predict_values`, making the result bit-identical to
        calling it per row.
        """
        n = len(rows)
        out = [None] * n
        if n == 0:
            return out
        feature = self.feature
        numeric = self.numeric
        threshold = self.threshold
        left = self.left
        right = self.right
        missing_left = self.missing_left
        label = self.label
        # (node, live-row-indices) groups for the current level. Child
        # pointers are unique, so groups never merge across parents.
        frontier: list[tuple[int, list[int]]] = [(0, list(range(n)))]
        while frontier:
            deeper: list[tuple[int, list[int]]] = []
            for node, live in frontier:
                f = feature[node]
                if f == _LEAF:
                    lab = label[node]
                    for r in live:
                        out[r] = lab
                    continue
                th = threshold[node]
                ml = missing_left[node]
                go_left: list[int] = []
                go_right: list[int] = []
                push_left = go_left.append
                push_right = go_right.append
                if numeric[node]:
                    for r in live:
                        v = rows[r][f]
                        if ml if v is None else v <= th:
                            push_left(r)
                        else:
                            push_right(r)
                else:
                    for r in live:
                        v = rows[r][f]
                        if ml if v is None else v == th:
                            push_left(r)
                        else:
                            push_right(r)
                if go_left:
                    deeper.append((left[node], go_left))
                if go_right:
                    deeper.append((right[node], go_right))
            frontier = deeper
        return out


def _literal(value, consts: list) -> str:
    """Source form of *value* for the generated batch program.

    Exact-type literals inline directly (one ``LOAD_CONST``); everything
    else — including non-finite floats, whose repr does not parse — goes
    through the constant pool *consts*, indexed at run time, preserving
    object identity.
    """
    t = type(value)
    if t in _LITERAL_TYPES and (t is not float or value == value
                                and value not in (float("inf"),
                                                  float("-inf"))):
        return repr(value)
    consts.append(value)
    return f"_K[{len(consts) - 1}]"


def _emit_tree(write, lit, tree: FlatTree, ti: int) -> None:
    """Emit one tree as nested ``if``/``else`` assigning ``r<ti>``.

    Missing-value routing folds into the guard itself: with the missing
    direction left, ``value is None or <test>`` sends ``None`` left;
    otherwise ``value is not None and <test>`` sends it right — exactly
    the three-way decision :meth:`FlatTree.predict_values` makes.
    """
    feature = tree.feature
    numeric = tree.numeric
    threshold = tree.threshold
    left, right = tree.left, tree.right
    missing_left, label = tree.missing_left, tree.label
    # Iterative preorder emission; stack entries are (slot, indent) or a
    # literal source line to flush (the dangling ``else:``).
    stack: list = [(0, 2)]
    while stack:
        item = stack.pop()
        if isinstance(item, str):
            write(item)
            continue
        slot, indent = item
        pad = "    " * indent
        f = feature[slot]
        if f == _LEAF:
            write(f"{pad}r{ti} = {lit(label[slot])}")
            continue
        op = "<=" if numeric[slot] else "=="
        test = f"v{f} {op} {lit(threshold[slot])}"
        if missing_left[slot]:
            write(f"{pad}if v{f} is None or {test}:")
        else:
            write(f"{pad}if v{f} is not None and {test}:")
        stack.append((right[slot], indent + 1))
        stack.append(f"{pad}else:")
        stack.append((left[slot], indent + 1))


def _compile_batch_program(forest: "FlatForest"):
    """Generate and compile the whole-forest batch function.

    Returns ``(fn, consts, skipped)`` where *fn* has signature
    ``fn(rows, out, _K)`` appending one ``{method: label}`` dict per row
    (skipped tree indices excluded), *consts* is the constant pool, and
    *skipped* indexes trees too deep to inline (answered by the
    level-synchronous kernel instead).
    """
    consts: list = []
    lit = lambda value: _literal(value, consts)  # noqa: E731
    inlined: list[int] = []
    skipped: list[int] = []
    for ti, tree in enumerate(forest.trees):
        (inlined if tree.depth() <= _MAX_INLINE_DEPTH else skipped).append(ti)
    lines: list[str] = ["def _forest_batch(rows, out, _K):",
                        "    append = out.append",
                        "    for _vals in rows:"]
    write = lines.append
    used = sorted({
        f
        for ti in inlined
        for f in forest.trees[ti].feature
        if f != _LEAF
    })
    for f in used:
        write(f"        v{f} = _vals[{f}]")
    for ti in inlined:
        _emit_tree(write, lit, forest.trees[ti], ti)
    body = ", ".join(
        f"{forest.names[ti]!r}: r{ti}" for ti in inlined
    )
    write("        append({" + body + "})")
    namespace: dict = {}
    exec(compile("\n".join(lines), "<flat-batch>", "exec"), namespace)
    return namespace["_forest_batch"], tuple(consts), tuple(skipped)


class FlatForest:
    """All method trees flattened over one shared column projection."""

    __slots__ = ("columns", "names", "trees", "_remaps",
                 "_batch_fn", "_batch_consts", "_batch_skipped")

    def __init__(self, trees: dict[str, FlatTree]):
        columns: list[str] = []
        positions: dict[str, int] = {}
        for tree in trees.values():
            for name in tree.columns:
                if name not in positions:
                    positions[name] = len(columns)
                    columns.append(name)
        self.columns = tuple(columns)
        self.names = tuple(trees)
        self.trees = tuple(trees.values())
        # Rewrite each tree's feature indices into the shared universe so
        # prediction projects the input vector exactly once.
        self._remaps = tuple(
            tuple(positions[name] for name in tree.columns)
            for tree in self.trees
        )
        for tree, remap in zip(self.trees, self._remaps):
            tree.feature = [
                remap[j] if j != _LEAF else _LEAF for j in tree.feature
            ]
        # Compiled batch program, built lazily on the first
        # predict_batch call (training loops never batch, so they never
        # pay for codegen). Trees are immutable after construction, so
        # the program never needs invalidation.
        self._batch_fn = None
        self._batch_consts: tuple = ()
        self._batch_skipped: tuple[int, ...] = ()

    def __getstate__(self):
        # The generated function is not picklable (and cheap to rebuild):
        # ship only the arrays, recompile lazily on the other side.
        return {
            "columns": self.columns,
            "names": self.names,
            "trees": self.trees,
            "_remaps": self._remaps,
        }

    def __setstate__(self, state) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self._batch_fn = None
        self._batch_consts = ()
        self._batch_skipped = ()

    def __len__(self) -> int:
        return len(self.trees)

    def project(self, vector: FeatureVector) -> tuple:
        """Align *vector* to the shared column universe (one pass)."""
        return tuple(vector.get(name) for name in self.columns)

    def predict_all(self, vector: FeatureVector) -> dict[str, object]:
        """Route one feature vector through every tree in a single pass."""
        values = self.project(vector)
        return {
            name: tree.predict_values(values)
            for name, tree in zip(self.names, self.trees)
        }

    def predict_batch(
        self, vectors: "list[FeatureVector]"
    ) -> list[dict[str, object]]:
        """Batched inference: predict every vector through every tree.

        Each vector is projected onto the shared column universe once;
        the whole query matrix then runs through the compiled batch
        program (see module docstring), with any non-inlinable trees
        answered by the level-synchronous kernel
        (:meth:`FlatTree.predict_values_batch`). Returns one
        ``{method: label}`` dict per input vector, in input order,
        bit-identical to ``[self.predict_all(v) for v in vectors]``.
        """
        if not vectors:
            return []
        columns = self.columns
        rows = [
            tuple(vector.get(name) for name in columns) for vector in vectors
        ]
        if self._batch_fn is None:
            (self._batch_fn, self._batch_consts,
             self._batch_skipped) = _compile_batch_program(self)
        results: list[dict[str, object]] = []
        self._batch_fn(rows, results, self._batch_consts)
        for ti in self._batch_skipped:
            name = self.names[ti]
            labels = self.trees[ti].predict_values_batch(rows)
            for result, lab in zip(results, labels):
                result[name] = lab
        return results


def compile_forest(trees: dict[str, "object"]) -> FlatForest:
    """Compile fitted :class:`ClassificationTree`\\ s into a forest.

    *trees* maps method name → fitted tree; unfitted entries must be
    filtered out by the caller. Insertion order is preserved.
    """
    flat: dict[str, FlatTree] = {}
    for name, tree in trees.items():
        if tree.root is None:
            raise ValueError(f"tree for {name!r} is not fitted")
        flat[name] = FlatTree(tree.root, tree.fitted_columns)
    return FlatForest(flat)
