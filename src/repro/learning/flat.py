"""Flattened trees: array-form prediction for the run-start hot path.

A fitted :class:`~repro.learning.tree.ClassificationTree` predicts by
chasing ``Node`` objects — fine offline, but the evolvable VM queries
*every* method's tree once at the start of every production run, where
attribute traffic and per-tree feature-vector projection add up. This
module compiles fitted trees into flat parallel arrays (feature index,
threshold, child offsets, missing-value direction) and batches the
per-run query:

- :class:`FlatTree` — one tree as arrays; ``predict_values`` walks
  integer indices only and is exactly equivalent to
  ``ClassificationTree.predict_values`` (same splits, same missing-value
  routing to the larger child).
- :class:`FlatForest` — every method's flat tree over one shared column
  universe. ``predict_all`` projects the input feature vector **once**
  and routes it through all trees in a single pass.

Compilation happens off the critical path (at ``refit`` time); the
startup path only reads arrays.
"""

from __future__ import annotations

from ..xicl.features import FeatureKind, FeatureVector

#: Sentinel feature index marking a leaf slot.
_LEAF = -1


class FlatTree:
    """One fitted tree compiled to parallel arrays (preorder node ids)."""

    __slots__ = ("feature", "numeric", "threshold", "left", "right",
                 "missing_left", "label", "columns")

    def __init__(self, root, columns: tuple[str, ...]):
        self.columns = columns
        self.feature: list[int] = []
        self.numeric: list[bool] = []
        self.threshold: list = []
        self.left: list[int] = []
        self.right: list[int] = []
        self.missing_left: list[bool] = []
        self.label: list = []
        self._compile(root)

    def _compile(self, node) -> int:
        slot = len(self.feature)
        if node.split is None:
            self.feature.append(_LEAF)
            self.numeric.append(False)
            self.threshold.append(None)
            self.left.append(_LEAF)
            self.right.append(_LEAF)
            self.missing_left.append(False)
            self.label.append(node.label)
            return slot
        self.feature.append(node.split.column_index)
        self.numeric.append(node.split.kind is FeatureKind.NUMERIC)
        self.threshold.append(node.split.threshold)
        self.left.append(0)   # patched below
        self.right.append(0)
        self.missing_left.append(node.left.size >= node.right.size)
        self.label.append(node.label)
        self.left[slot] = self._compile(node.left)
        self.right[slot] = self._compile(node.right)
        return slot

    @property
    def n_nodes(self) -> int:
        return len(self.feature)

    def predict_values(self, values) -> object:
        """Predict from values aligned to this tree's training columns."""
        feature = self.feature
        i = 0
        while feature[i] != _LEAF:
            value = values[feature[i]]
            if value is None:
                go_left = self.missing_left[i]
            elif self.numeric[i]:
                go_left = value <= self.threshold[i]
            else:
                go_left = value == self.threshold[i]
            i = self.left[i] if go_left else self.right[i]
        return self.label[i]


class FlatForest:
    """All method trees flattened over one shared column projection."""

    __slots__ = ("columns", "names", "trees", "_remaps")

    def __init__(self, trees: dict[str, FlatTree]):
        columns: list[str] = []
        positions: dict[str, int] = {}
        for tree in trees.values():
            for name in tree.columns:
                if name not in positions:
                    positions[name] = len(columns)
                    columns.append(name)
        self.columns = tuple(columns)
        self.names = tuple(trees)
        self.trees = tuple(trees.values())
        # Rewrite each tree's feature indices into the shared universe so
        # prediction projects the input vector exactly once.
        self._remaps = tuple(
            tuple(positions[name] for name in tree.columns)
            for tree in self.trees
        )
        for tree, remap in zip(self.trees, self._remaps):
            tree.feature = [
                remap[j] if j != _LEAF else _LEAF for j in tree.feature
            ]

    def __len__(self) -> int:
        return len(self.trees)

    def project(self, vector: FeatureVector) -> tuple:
        """Align *vector* to the shared column universe (one pass)."""
        return tuple(vector.get(name) for name in self.columns)

    def predict_all(self, vector: FeatureVector) -> dict[str, object]:
        """Route one feature vector through every tree in a single pass."""
        values = self.project(vector)
        return {
            name: tree.predict_values(values)
            for name, tree in zip(self.names, self.trees)
        }


def compile_forest(trees: dict[str, "object"]) -> FlatForest:
    """Compile fitted :class:`ClassificationTree`\\ s into a forest.

    *trees* maps method name → fitted tree; unfitted entries must be
    filtered out by the caller. Insertion order is preserved.
    """
    flat: dict[str, FlatTree] = {}
    for name, tree in trees.items():
        if tree.root is None:
            raise ValueError(f"tree for {name!r} is not fitted")
        flat[name] = FlatTree(tree.root, tree.fitted_columns)
    return FlatForest(flat)
