"""Tabular dataset of (feature vector, label) observations.

The dataset aligns feature vectors by name into fixed columns so the tree
learner can address features positionally. Vectors from different runs of
one application normally share a shape (XICL guarantees it), but the
dataset tolerates drift: unseen features grow new columns, and rows missing
a column hold ``None`` (the tree routes missing values to the larger
child).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..xicl.features import FeatureKind, FeatureVector


@dataclass(frozen=True, slots=True)
class Row:
    values: tuple
    label: object


class Dataset:
    """A mutable, column-aligned training set."""

    def __init__(self):
        self._columns: list[str] = []
        self._kinds: dict[str, FeatureKind] = {}
        self._rows: list[Row] = []

    # -- construction ---------------------------------------------------------
    def add(self, vector: FeatureVector, label: object) -> None:
        """Append one observation, aligning columns by feature name."""
        widened = False
        for feature in vector:
            if feature.name not in self._kinds:
                self._columns.append(feature.name)
                self._kinds[feature.name] = feature.kind
                widened = True
        if widened and self._rows:
            width = len(self._columns)
            self._rows = [
                Row(row.values + (None,) * (width - len(row.values)), row.label)
                for row in self._rows
            ]
        values = tuple(vector.get(name) for name in self._columns)
        self._rows.append(Row(values, label))

    @classmethod
    def from_pairs(cls, pairs: list[tuple[FeatureVector, object]]) -> "Dataset":
        ds = cls()
        for vector, label in pairs:
            ds.add(vector, label)
        return ds

    # -- access -------------------------------------------------------------
    @property
    def columns(self) -> tuple[str, ...]:
        return tuple(self._columns)

    def kind_of(self, column: str) -> FeatureKind:
        return self._kinds[column]

    def column_index(self, column: str) -> int:
        return self._columns.index(column)

    @property
    def rows(self) -> tuple[Row, ...]:
        return tuple(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def labels(self) -> tuple:
        return tuple(row.label for row in self._rows)

    def label_counts(self) -> dict[object, int]:
        counts: dict[object, int] = {}
        for row in self._rows:
            counts[row.label] = counts.get(row.label, 0) + 1
        return counts

    def majority_label(self) -> object:
        """Most frequent label (ties broken deterministically by repr)."""
        counts = self.label_counts()
        if not counts:
            raise ValueError("empty dataset has no majority label")
        return max(counts.items(), key=lambda kv: (kv[1], repr(kv[0])))[0]

    def vector_values(self, vector: FeatureVector) -> tuple:
        """Project *vector* onto this dataset's column order."""
        return tuple(vector.get(name) for name in self._columns)

    def truncate_to_last(self, keep: int) -> int:
        """Drop all but the last *keep* rows; returns the count dropped.

        Targeted forgetting for drift response: the columns (and their
        kinds) stay, so later rows keep their alignment — only the stale
        history goes.
        """
        if keep < 0:
            raise ValueError("keep must be >= 0")
        dropped = len(self._rows) - keep
        if dropped <= 0:
            return 0
        self._rows = self._rows[-keep:] if keep else []
        return dropped

    def subset(self, indices: list[int]) -> "Dataset":
        """A new dataset containing the given row indices (columns shared)."""
        out = Dataset()
        out._columns = list(self._columns)
        out._kinds = dict(self._kinds)
        out._rows = [self._rows[i] for i in indices]
        return out
