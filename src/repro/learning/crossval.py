"""Cross-validation utilities for model-quality estimation.

The paper's discriminative predictor measures model quality through
cross-validation; these helpers provide deterministic k-fold (and
leave-one-out for small histories) accuracy estimates.
"""

from __future__ import annotations

from random import Random

from .dataset import Dataset
from .tree import ClassificationTree, TreeParams


def kfold_indices(n: int, k: int, seed: int = 0) -> list[list[int]]:
    """Deterministically shuffle ``range(n)`` into *k* folds (possibly
    uneven; never empty as long as ``n >= k``)."""
    if n <= 0:
        raise ValueError("need at least one row")
    k = max(2, min(k, n))
    indices = list(range(n))
    Random(seed).shuffle(indices)
    folds: list[list[int]] = [[] for _ in range(k)]
    for position, index in enumerate(indices):
        folds[position % k].append(index)
    return folds


def cross_validated_accuracy(
    dataset: Dataset,
    params: TreeParams = TreeParams(),
    k: int = 5,
    seed: int = 0,
    engine: str = "auto",
) -> float:
    """Mean held-out accuracy of trees fit on k−1 folds.

    Falls back to leave-one-out when the dataset is smaller than *k*.
    Returns 0.0 for datasets too small to validate at all (a single row),
    keeping early-history confidence conservative.

    On the fast engine every fold fit reuses **one** shared presorted
    :class:`~repro.learning.matrix.TrainingMatrix` of the full dataset
    (fold trees are bit-identical to fitting on a per-fold subset, so
    scores match the reference engine exactly).
    """
    n = len(dataset)
    if n < 2:
        return 0.0
    matrix = None
    if engine != "reference":
        from .matrix import TrainingMatrix

        matrix = TrainingMatrix.from_dataset(dataset)
    folds = kfold_indices(n, k, seed=seed)
    correct = 0
    counted = 0
    for fold in folds:
        if not fold:
            continue
        held = set(fold)
        train_idx = [i for i in range(n) if i not in held]
        if not train_idx:
            continue
        tree = ClassificationTree(params, engine=engine).fit_indices(
            dataset, train_idx, matrix=matrix
        )
        for i in fold:
            row = dataset.rows[i]
            # Project the row onto the training column order (identical
            # columns; fit_indices shares them).
            if tree.predict_values(row.values) == row.label:
                correct += 1
            counted += 1
    if counted == 0:
        return 0.0
    return correct / counted
