"""The per-application model registry behind the serving fleet.

Each tenant's learned state (per-method training data + confidence) is
persisted through the crash-safe resilience envelope — the same
``vm-state`` artifacts :mod:`repro.core.records` writes for batch runs —
one file per application under one registry root:

    <registry>/<app>.state

Loading is quarantine-aware and never fatal: a missing, torn, or
corrupted state file cold-starts that tenant with empty records (the
paper's low-confidence path) while the file is moved to ``.quarantine/``
with a machine-readable reason sidecar. Every such decision lands in the
registry's :class:`~repro.resilience.degradation.DegradationReport`, and
:meth:`ModelRegistry.startup_summary` condenses it so the server can
refuse to boot *silently* degraded — ``repro serve`` prints the summary
on stderr and emits it as a ``serve_degradation`` telemetry event.

The registry also tracks the **model generation** per tenant: a counter
bumped by every hot swap (offline ``refit_all`` + atomic forest-pointer
flip). Responses carry the generation that served them, so operators can
correlate behavior changes with swaps. Generations persist beside the
state file in a per-tenant ``<app>.gen`` sidecar (atomic write, lenient
read), one file per tenant so disjoint shard workers over one registry
root never contend — a respawned shard restores both the model *and* the
generation counter its responses must keep reporting.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from ..core.evolvable import EvolvableVM
from ..core.records import load_state_file, save_state
from ..resilience.degradation import DegradationReport
from ..resilience.envelope import REAL_FS, FileSystem

#: Filename suffix for per-tenant state artifacts.
STATE_SUFFIX = ".state"

#: Filename suffix for per-tenant generation sidecars.
GENERATION_SUFFIX = ".gen"


def _safe_name(app_name: str) -> str:
    """Filesystem-safe rendering of a tenant name (collision-tolerant:
    tenants are validated unique upstream by the fleet)."""
    return re.sub(r"[^A-Za-z0-9._-]", "_", app_name)


class ModelRegistry:
    """Crash-safe persistence + generation tracking for a tenant fleet."""

    def __init__(
        self,
        root: str | Path | None,
        *,
        fs: FileSystem = REAL_FS,
        report: DegradationReport | None = None,
    ):
        #: ``None`` root = ephemeral registry (nothing persists; every
        #: tenant cold-starts and saves are no-ops). Used by tests and
        #: by studies that must not touch the working directory.
        self.root = Path(root) if root is not None else None
        self.fs = fs
        self.report = report if report is not None else DegradationReport()
        self.generations: dict[str, int] = {}
        self.restored: list[str] = []
        self.cold_started: list[str] = []
        #: Automatic rollbacks performed per tenant (``docs/robustness.md``,
        #: "Drift and rollback").
        self.rollbacks: dict[str, int] = {}

    def state_path(self, app_name: str) -> Path | None:
        if self.root is None:
            return None
        return self.root / f"{_safe_name(app_name)}{STATE_SUFFIX}"

    def generation_path(self, app_name: str) -> Path | None:
        if self.root is None:
            return None
        return self.root / f"{_safe_name(app_name)}{GENERATION_SUFFIX}"

    # -- generation persistence ----------------------------------------------
    def _load_generation(self, app_name: str) -> None:
        """Adopt the persisted generation counter, if any (never raises).

        A missing sidecar is the normal cold start (counter 0); a torn
        or unparseable one degrades to 0 with the decision recorded —
        the model itself still restores, only the counter restarts.
        """
        path = self.generation_path(app_name)
        if path is None or not self.fs.exists(path):
            return
        try:
            payload = json.loads(self.fs.read_bytes(path).decode("utf-8"))
            generation = int(payload["generation"])
            rollbacks = int(payload.get("rollbacks", 0))
        except Exception as exc:
            self.report.record(
                "registry", "generation-reset", "unreadable-sidecar",
                detail=f"tenant {app_name}: {type(exc).__name__}: {exc}; "
                "generation counter restarts at 0",
                path=str(path),
            )
            return
        self.generations[app_name] = generation
        if rollbacks:
            self.rollbacks[app_name] = rollbacks

    def _persist_generation(self, app_name: str) -> None:
        """Atomically publish the tenant's counters (I/O failures degrade,
        they never take a swap down)."""
        path = self.generation_path(app_name)
        if path is None:
            return
        payload = {
            "generation": self.generations.get(app_name, 0),
            "rollbacks": self.rollbacks.get(app_name, 0),
        }
        try:
            self.fs.write_bytes_atomic(
                path, json.dumps(payload, sort_keys=True).encode("utf-8")
            )
        except OSError as exc:
            self.report.record(
                "registry", "generation-unsaved", "io-error",
                detail=f"tenant {app_name}: {type(exc).__name__}: {exc}",
                path=str(path),
            )

    # -- startup ------------------------------------------------------------
    def load_into(self, vm: EvolvableVM) -> bool:
        """Restore *vm* from its tenant's state file (never raises).

        Returns ``True`` when state was fully restored; any failure
        cold-starts the tenant, quarantines the artifact, and records
        the decision in :attr:`report`.
        """
        name = vm.app.name
        self.generations.setdefault(name, 0)
        self._load_generation(name)
        path = self.state_path(name)
        if path is None:
            self.cold_started.append(name)
            return False
        restored = load_state_file(
            vm, str(path), fs=self.fs, report=self.report
        )
        (self.restored if restored else self.cold_started).append(name)
        return restored

    # -- swap + persistence --------------------------------------------------
    def note_swap(self, app_name: str) -> int:
        """Bump, persist, and return the tenant's model generation."""
        self.generations[app_name] = self.generations.get(app_name, 0) + 1
        self._persist_generation(app_name)
        return self.generations[app_name]

    def note_rollback(self, app_name: str) -> int:
        """Record an automatic rollback; returns the new generation.

        A rollback *deploys* the restored last-good model, so it bumps
        the generation like any swap — responses never claim an old
        generation number for what is operationally a new deployment
        (the monotone counter is what lets operators correlate behavior
        changes with model flips).
        """
        self.rollbacks[app_name] = self.rollbacks.get(app_name, 0) + 1
        return self.note_swap(app_name)

    def save(self, vm: EvolvableVM) -> bool:
        """Persist *vm*'s learned state; I/O failures degrade (recorded),
        they never take the serving loop down."""
        path = self.state_path(vm.app.name)
        if path is None:
            return False
        return save_state(vm, str(path), fs=self.fs, report=self.report)

    # -- observability -------------------------------------------------------
    def startup_summary(self) -> dict:
        """Machine-readable account of how the registry came up.

        ``degraded`` is True whenever any tenant failed to restore for a
        reason other than a simply-missing file (quarantine, I/O error) —
        the condition ``repro serve`` must surface, never swallow.
        """
        quarantines = self.report.count(action="quarantine")
        return {
            "registry": str(self.root) if self.root is not None else None,
            "tenants": sorted(self.generations),
            "restored": sorted(self.restored),
            "cold_started": sorted(self.cold_started),
            "quarantined": quarantines,
            "degradations": len(self.report),
            "degraded": quarantines > 0
            or any(
                event.action == "cold-start" and event.reason != "missing"
                for event in self.report.events
            ),
        }

    def describe_startup(self) -> str:
        """Human-readable startup summary (the stderr surface)."""
        summary = self.startup_summary()
        lines = [
            f"model registry: {summary['registry'] or '(ephemeral)'} — "
            f"{len(summary['restored'])} tenant(s) restored, "
            f"{len(summary['cold_started'])} cold-started, "
            f"{summary['quarantined']} quarantined"
        ]
        if summary["degraded"]:
            lines.append(
                "WARNING: registry degraded on startup "
                f"({self.report.describe()}); affected tenants boot with "
                "empty records (reactive optimizer, low confidence)"
            )
            for event in self.report.events:
                lines.append(f"  - {event.describe()}")
        return "\n".join(lines)
