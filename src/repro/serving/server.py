"""The asyncio fleet server: concurrent mixed-tenant run/predict serving.

Architecture (``docs/serving.md`` has the operator-facing picture):

- One **bounded queue + worker task per tenant**. All of a tenant's
  operations — runs, predicts, swaps — flow through its queue in arrival
  order, so each tenant's outcome stream is a pure function of its
  request sequence: bit-identical to replaying the same requests
  serially (the concurrency suite asserts this). Different tenants
  proceed concurrently on a shared thread pool.
- **Admission control**: a full tenant queue sheds the request
  immediately with a machine-readable 429
  (:func:`~repro.serving.protocol.shed_response`), counted per tenant
  and emitted as a ``serve_shed`` telemetry event. Shedding never blocks
  the event loop and never touches tenant state, so accepted traffic
  stays deterministic.
- **Predict batching**: consecutive ``predict`` requests waiting in a
  tenant's queue are drained into one batch and answered in a single
  worker hop by one batched kernel call
  (:meth:`~repro.core.model_builder.ModelBuilder.predict_all_batch`,
  bit-identical to per-row ``predict_all``) — batching amortizes both
  dispatch and tree traversal, and cannot reorder ops. Per-hop batch
  sizes land in ``ServerStats.to_dict()`` and ``serve_batch`` telemetry.
- **Hot swap**: after ``refit_interval`` runs (or an explicit ``swap``
  request) the tenant refits offline and flips its compiled forest
  pointer atomically; requests already executing finish on the old
  generation. Swaps happen inside the tenant's serialized stream, so
  their position in the request order is deterministic too.
- **Startup surfacing**: the server refuses to come up silently
  degraded — :meth:`FleetServer.surface_startup` prints the registry's
  :class:`~repro.resilience.degradation.DegradationReport` summary on
  stderr and emits ``serve_degradation`` + ``serve_start`` telemetry.

The offline side of a swap reuses the existing process-pool engine:
``refit_all(jobs=N)`` fans per-method tree construction through
:func:`~repro.experiments.parallel.map_parallel`.
"""

from __future__ import annotations

import asyncio
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..experiments.telemetry import TelemetryLog, serve_event
from .protocol import (
    TENANT_OPS,
    bad_request_response,
    error_response,
    ok_response,
    shed_response,
    unknown_tenant_response,
    validate_request,
)
from .registry import ModelRegistry
from .tenant import Tenant

#: Upper bound on predicts answered in one batched worker hop.
DEFAULT_BATCH_MAX = 16


@dataclass
class ServerStats:
    """Aggregate serving counters (the ``stats`` op returns these)."""

    accepted: int = 0
    served: int = 0
    shed: int = 0
    errors: int = 0
    swaps: int = 0
    rollbacks: int = 0
    batches: int = 0
    batched_predicts: int = 0
    #: Batch-size distribution over every predict worker hop (a solo
    #: predict is a hop of size 1), the observable for batching efficacy.
    batch_hops: int = 0
    batch_size_max: int = 0
    batch_size_sum: int = 0
    latencies_ms: list[float] = field(default_factory=list)

    def note_batch(self, size: int) -> None:
        self.batch_hops += 1
        self.batch_size_sum += size
        if size > self.batch_size_max:
            self.batch_size_max = size

    def snapshot(self) -> dict:
        return {
            "accepted": self.accepted,
            "served": self.served,
            "shed": self.shed,
            "errors": self.errors,
            "swaps": self.swaps,
            "rollbacks": self.rollbacks,
            "batches": self.batches,
            "batched_predicts": self.batched_predicts,
        }

    def to_dict(self) -> dict:
        """:meth:`snapshot` plus the batch-size distribution (the
        ``stats`` op payload and the shard-router merge input)."""
        payload = self.snapshot()
        payload["batch_sizes"] = {
            "count": self.batch_hops,
            "max": self.batch_size_max,
            "mean": (
                self.batch_size_sum / self.batch_hops
                if self.batch_hops
                else 0.0
            ),
        }
        return payload


class FleetServer:
    """Long-lived front end over a fleet of resident :class:`Tenant`\\ s."""

    def __init__(
        self,
        tenants: list[Tenant],
        registry: ModelRegistry,
        *,
        queue_bound: int = 128,
        batch_max: int = DEFAULT_BATCH_MAX,
        workers: int | None = None,
        telemetry: TelemetryLog | None = None,
    ):
        self.tenants = {tenant.name: tenant for tenant in tenants}
        self.registry = registry
        self.queue_bound = queue_bound
        self.batch_max = max(1, batch_max)
        self.workers = workers
        self.telemetry = telemetry
        self.stats = ServerStats()
        self._queues: dict[str, asyncio.Queue] = {}
        self._worker_tasks: list[asyncio.Task] = []
        self._executor: ThreadPoolExecutor | None = None
        self._started = False

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        if self._started:
            return
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers or max(2, len(self.tenants)),
            thread_name_prefix="fleet",
        )
        for name, tenant in self.tenants.items():
            queue: asyncio.Queue = asyncio.Queue(maxsize=self.queue_bound)
            self._queues[name] = queue
            self._worker_tasks.append(
                asyncio.create_task(
                    self._tenant_worker(tenant, queue),
                    name=f"tenant-{name}",
                )
            )
        self._started = True
        if self.telemetry is not None:
            self.telemetry.append(
                serve_event(
                    "serve_start", **self._start_fields()
                )
            )

    def _start_fields(self) -> dict:
        summary = self.registry.startup_summary()
        return {
            "tenants": len(self.tenants),
            "restored": len(summary["restored"]),
            "cold_started": len(summary["cold_started"]),
            "quarantined": summary["quarantined"],
            "degraded": summary["degraded"],
        }

    def surface_startup(self, stream=None) -> dict:
        """Print the registry startup summary (stderr by default) and
        mirror every degradation event into telemetry. Returns the
        machine-readable summary. A quarantined/partially-restored
        registry is loud here, never silent."""
        stream = stream if stream is not None else sys.stderr
        print(self.registry.describe_startup(), file=stream)
        if self.telemetry is not None:
            for event in self.registry.report.events:
                self.telemetry.append(
                    serve_event(
                        "serve_degradation",
                        component=event.component,
                        action=event.action,
                        reason=event.reason,
                        detail=event.detail,
                        path=event.path,
                    )
                )
        return self.registry.startup_summary()

    async def drain(self) -> None:
        """Wait until every accepted request has been answered."""
        for queue in self._queues.values():
            await queue.join()

    async def stop(self, *, persist: bool = True) -> None:
        """Drain, persist every tenant's state, and tear down workers."""
        await self.drain()
        for task in self._worker_tasks:
            task.cancel()
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        self._worker_tasks.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if persist:
            for tenant in self.tenants.values():
                self.registry.save(tenant.vm)
        self._started = False

    # -- request admission ---------------------------------------------------
    def submit_nowait(self, request: dict) -> "asyncio.Future[dict]":
        """Admit (or immediately shed/reject) one request.

        Returns a future resolving to the response. Never blocks and
        never yields: per-tenant arrival order is exactly the caller's
        call order, which is what makes serial replay meaningful.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        problems = validate_request(request)
        if problems:
            future.set_result(bad_request_response(
                request if isinstance(request, dict) else {}, problems
            ))
            return future
        op = request["op"]
        if op == "stats":
            future.set_result(ok_response(request, **self._stats_payload()))
            return future
        tenant = self.tenants.get(request["app"])
        if tenant is None:
            future.set_result(
                unknown_tenant_response(request, sorted(self.tenants))
            )
            return future
        queue = self._queues[tenant.name]
        if queue.full():
            self.stats.shed += 1
            if self.telemetry is not None:
                self.telemetry.append(
                    serve_event(
                        "serve_shed",
                        app=tenant.name,
                        op=op,
                        queue_depth=queue.qsize(),
                        queue_bound=self.queue_bound,
                    )
                )
            future.set_result(
                shed_response(request, queue.qsize(), self.queue_bound)
            )
            return future
        self.stats.accepted += 1
        queue.put_nowait((request, future, time.perf_counter()))
        return future

    async def submit(self, request: dict) -> dict:
        if not self._started:
            raise RuntimeError("FleetServer.start() has not been awaited")
        return await self.submit_nowait(request)

    def _stats_payload(self) -> dict:
        return {
            "server": self.stats.to_dict(),
            "tenants": {
                name: tenant.stats()
                for name, tenant in sorted(self.tenants.items())
            },
            "registry": self.registry.startup_summary(),
        }

    # -- the per-tenant serialized worker -------------------------------------
    async def _tenant_worker(
        self, tenant: Tenant, queue: asyncio.Queue
    ) -> None:
        loop = asyncio.get_running_loop()
        while True:
            request, future, admitted = await queue.get()
            batch: list[tuple[dict, asyncio.Future, float]] = [
                (request, future, admitted)
            ]
            # Batch consecutive predicts already waiting in the queue.
            if request["op"] == "predict":
                while (
                    len(batch) < self.batch_max
                    and not queue.empty()
                    and queue._queue[0][0].get("op") == "predict"
                ):
                    batch.append(queue.get_nowait())
            try:
                await self._execute_batch(loop, tenant, batch, queue)
            finally:
                for _ in batch:
                    queue.task_done()

    async def _execute_batch(self, loop, tenant: Tenant, batch, queue) -> None:
        op = batch[0][0]["op"]
        if op == "predict":
            # Every predict hop lands in the batch-size distribution —
            # a solo predict is a hop of size 1 — so the stats surface
            # shows how much of the stream actually batches.
            self.stats.note_batch(len(batch))
        try:
            if op == "predict" and len(batch) > 1:
                cmdlines = [request["cmdline"] for request, _, _ in batch]
                payloads = await loop.run_in_executor(
                    self._executor, tenant.predict_batch, cmdlines
                )
                self.stats.batches += 1
                self.stats.batched_predicts += len(batch)
                if self.telemetry is not None:
                    self.telemetry.append(
                        serve_event(
                            "serve_batch",
                            app=tenant.name,
                            size=len(batch),
                            queue_depth=queue.qsize(),
                        )
                    )
            else:
                payloads = [
                    await loop.run_in_executor(
                        self._executor, self._run_op, tenant, batch[0][0]
                    )
                ]
        except Exception as exc:  # worker exception: reported, not fatal
            self.stats.errors += len(batch)
            for request, future, _ in batch:
                if not future.done():
                    future.set_result(error_response(request, exc))
            return
        now = time.perf_counter()
        for (request, future, admitted), payload in zip(batch, payloads):
            wall_ms = (now - admitted) * 1000.0
            self.stats.served += 1
            self.stats.latencies_ms.append(wall_ms)
            if self.telemetry is not None:
                self.telemetry.append(
                    serve_event(
                        "serve_request",
                        app=tenant.name,
                        op=request["op"],
                        status=200,
                        wall_ms=wall_ms,
                        batched=len(batch),
                    )
                )
            rollback = (
                payload.get("rollback") if isinstance(payload, dict) else None
            )
            if rollback:
                self.stats.rollbacks += 1
                if self.telemetry is not None:
                    self.telemetry.append(
                        serve_event(
                            "serve_rollback",
                            app=tenant.name,
                            from_generation=rollback["from_generation"],
                            to_generation=rollback["to_generation"],
                            watchdog=rollback["watchdog"],
                        )
                    )
            if not future.done():
                future.set_result(
                    ok_response(request, wall_ms=wall_ms, **payload)
                )
        # Auto-swap sits inside the tenant's serialized stream, so its
        # position in the request order is deterministic.
        if op == "run" and tenant.due_for_swap():
            await self._swap(loop, tenant)

    def _run_op(self, tenant: Tenant, request: dict) -> dict:
        op = request["op"]
        if op == "run":
            return tenant.run(request["cmdline"], request.get("seed"))
        if op == "predict":
            return tenant.predict(request["cmdline"])
        if op == "swap":
            return self._swap_sync(tenant)
        raise ValueError(f"unroutable op {op!r}")

    async def _swap(self, loop, tenant: Tenant) -> dict:
        return await loop.run_in_executor(
            self._executor, self._swap_sync, tenant
        )

    def _swap_sync(self, tenant: Tenant) -> dict:
        start = time.perf_counter()
        info = tenant.swap()
        self.stats.swaps += 1
        if self.telemetry is not None:
            self.telemetry.append(
                serve_event(
                    "serve_swap",
                    app=tenant.name,
                    generation=info["generation"],
                    runs=info["runs_refit"],
                    wall_s=time.perf_counter() - start,
                )
            )
        return info


# ---------------------------------------------------------------------------
# TCP transport (JSON lines)
# ---------------------------------------------------------------------------

async def serve_tcp(
    server: FleetServer, host: str = "127.0.0.1", port: int = 0
):
    """Expose *server* over a newline-delimited-JSON TCP socket.

    Returns the ``asyncio.Server``; callers own its lifecycle. Each
    connection is a sequential request/response stream; an unparseable
    line gets a 400 and the connection stays open.
    """
    from .protocol import decode_line, encode_line

    async def handle(reader, writer):
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                request = decode_line(line)
                if request is None:
                    response = bad_request_response(
                        {}, ["unparseable JSON line"]
                    )
                else:
                    response = await server.submit(request)
                writer.write(encode_line(_json_safe(response)))
                await writer.drain()
        finally:
            writer.close()

    return await asyncio.start_server(handle, host, port)


def _json_safe(obj):
    """Best-effort JSON projection (VM results are plain values for every
    shipped tenant app; anything exotic degrades to ``repr``)."""
    import json

    try:
        json.dumps(obj)
        return obj
    except (TypeError, ValueError):
        return json.loads(json.dumps(obj, default=repr))
