"""Resident serving tenants: one warm evolvable VM per application.

A :class:`Tenant` wraps one application in **serving mode**: the
:class:`~repro.core.evolvable.EvolvableVM` stays resident across the
whole request stream (one JIT code cache, one translator cache, one
learner), but — unlike the batch Figure-7 loop — the end-of-run
``refit_all`` is *deferred* (``EvolvableVM(defer_refits=True)``). Runs
still observe their posterior ideal strategies and update confidence;
model construction happens only at an explicit **swap** point:

    swap = offline ``refit_all`` (optionally fanned across processes via
    ``map_parallel``) + one atomic flip of the compiled
    :class:`~repro.learning.flat.FlatForest` pointer + a registry
    generation bump + a crash-safe state save.

The flip is a single attribute assignment of a fully-built immutable
forest, so a prediction in flight reads either the old generation or the
new one, never a half-swapped model (a test hammers this from threads).

Tenants share two caches fleet-wide:

- the **JIT artifact cache** (:mod:`repro.vm.opt.artifact_cache`): every
  tenant's compiler publishes into one store, so a method shape compiled
  for one tenant warms every other tenant with the same program;
- the **prediction result cache** (the telemetry-layer
  :class:`~repro.experiments.telemetry.ResultCache`): ``predict``
  responses are memoized keyed by *(tenant, model fingerprint, cmdline)*.
  The fingerprint is content-addressed (a digest of the serialized
  training state at the last swap), so entries survive restarts and can
  never serve a stale model's answer — a new generation simply misses.
"""

from __future__ import annotations

import hashlib
import json

from collections import deque

from ..core.application import Application
from ..core.evolvable import EvolvableVM, RunOutcome
from ..core.records import restore_state, state_to_dict
from ..experiments.telemetry import CacheKey, ResultCache
from ..resilience.quarantine import quarantine_file
from ..vm.config import DEFAULT_CONFIG, VMConfig
from ..vm.opt.artifact_cache import JITArtifactCache
from ..vm.opt.jit import JITCompiler
from .registry import ModelRegistry


def run_payload(outcome: RunOutcome, generation: int) -> dict:
    """The deterministic slice of one run's outcome (the response body).

    Everything here is a pure function of the tenant's request history,
    so the concurrency suite can compare it bit-for-bit against a serial
    replay; wall-clock metadata is attached separately by the server.
    """
    return {
        "result": outcome.result,
        "total_cycles": outcome.total_cycles,
        "overhead_cycles": outcome.overhead_cycles,
        "applied_prediction": bool(outcome.applied_prediction),
        "predicted": (
            {m: int(lvl) for m, lvl in outcome.predicted.levels.items()}
            if outcome.predicted is not None
            else None
        ),
        "accuracy": outcome.accuracy,
        "confidence": outcome.confidence_after,
        "generation": generation,
        "drift_methods": list(outcome.drift_methods),
    }


class Tenant:
    """One application resident in the fleet."""

    def __init__(
        self,
        app: Application,
        *,
        registry: ModelRegistry,
        config: VMConfig = DEFAULT_CONFIG,
        artifact_cache: JITArtifactCache | None = None,
        predict_cache: ResultCache | None = None,
        refit_interval: int | None = 25,
        refit_jobs: int = 1,
        probation_window: int | None = 8,
        probation_margin: float = 0.15,
        max_rollbacks: int = 2,
        **vm_kwargs,
    ):
        self.app = app
        self.name = app.name
        self.registry = registry
        self.predict_cache = predict_cache
        self.refit_interval = refit_interval
        #: Post-swap accuracy probation (``docs/robustness.md``, "Drift
        #: and rollback"): the first *probation_window* learned runs of a
        #: fresh generation must keep mean accuracy within
        #: *probation_margin* of the pre-swap baseline, or the tenant
        #: rolls back to the last generation that passed probation.
        #: ``probation_window=None`` disables the whole mechanism.
        self.probation_window = probation_window
        self.probation_margin = probation_margin
        #: Consecutive rollbacks that trip the watchdog (forced re-train
        #: from the recent window + state-file quarantine).
        self.max_rollbacks = max_rollbacks
        jit = JITCompiler(app.program, config, artifact_cache=artifact_cache)
        self.vm = EvolvableVM(
            app,
            config=config,
            jit=jit,
            cache_translations=True,
            defer_refits=True,
            refit_jobs=refit_jobs,
            **vm_kwargs,
        )
        restored = registry.load_into(self.vm)
        self._fingerprint = self._model_fingerprint() if restored else "cold"
        #: Runs observed since the last swap (drives auto-swap policy).
        self.runs_since_swap = 0
        self.runs_total = 0
        self.predicts_total = 0
        self.swaps_total = 0
        self.predict_cache_hits = 0
        self.rollbacks_total = 0
        self.retrains_total = 0
        #: Snapshot of the last generation that passed probation — the
        #: rollback target. A restored tenant trusts its persisted state
        #: (it was saved by a generation that was serving); a cold one
        #: has nothing to roll back to until a swap survives probation.
        self._last_good: dict | None = (
            state_to_dict(self.vm) if restored else None
        )
        #: Active probation: {"generation", "baseline", "runs", "acc_sum"}.
        self._probation: dict | None = None
        self._consecutive_rollbacks = 0
        #: Recent learned-run accuracies; their mean at swap time is the
        #: probation baseline the fresh generation must defend.
        self._recent_acc: deque[float] = deque(
            maxlen=max(1, probation_window or 1)
        )

    @property
    def generation(self) -> int:
        return self.registry.generations.get(self.name, 0)

    def _model_fingerprint(self) -> str:
        """Content digest of the deployed model's training state."""
        payload = json.dumps(
            state_to_dict(self.vm), sort_keys=True
        ).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()[:24]

    # -- ops (always called from the tenant's single serialized worker) -----
    def run(self, cmdline: str, seed: int | None = None) -> dict:
        """Execute once, learn (observation only — no refit), and report.

        Also advances the post-swap probation: when a fresh generation's
        probation window closes under the baseline by more than the
        margin, the rollback happens *here*, inside the tenant's
        serialized stream — the response that triggered it carries the
        ``rollback`` record, and every later response already serves the
        restored generation.
        """
        rng_seed = seed if seed is not None else self.runs_total
        outcome = self.vm.run(cmdline, rng_seed=rng_seed)
        self.runs_since_swap += 1
        self.runs_total += 1
        rollback = self._note_probation_run(outcome)
        payload = run_payload(outcome, self.generation)
        payload["rollback"] = rollback
        return payload

    def predict(self, cmdline: str) -> dict:
        """Strategy prediction only: one flattened-forest pass
        (:meth:`~repro.core.model_builder.ModelBuilder.predict_all`), no
        execution, no training. Memoized in the shared result cache."""
        self.predicts_total += 1
        cached = self._predict_cached(cmdline)
        if cached is not None:
            self.predict_cache_hits += 1
            return self._predict_response(cached)
        if self.vm.translator is None:
            levels = {}  # no XICL spec: nothing to featurize or predict
        else:
            tokens = self.app.split_cmdline(cmdline)
            fvector = self.vm.translator.build_fvector(tokens)
            levels = {
                method: int(label)
                for method, label in self.vm.models.predict_all(
                    fvector
                ).items()
            }
            self._predict_store(cmdline, levels)
        return self._predict_response(levels)

    def predict_batch(self, cmdlines: list[str]) -> list[dict]:
        """One executor hop, one batched kernel call, for a whole batch.

        Cache hits answer from the shared result cache exactly as
        :meth:`predict` would; the misses — deduplicated, since a
        repeated cmdline later in the batch would have hit the entry its
        first occurrence stored — are featurized and answered by a
        single
        :meth:`~repro.core.model_builder.ModelBuilder.predict_all_batch`
        kernel call. Responses and counters (``predicts_total``,
        ``predict_cache_hits``) are bit-identical to calling
        :meth:`predict` per cmdline in order: prediction mutates nothing
        the later entries of the batch could observe.
        """
        results: list[dict | None] = [None] * len(cmdlines)
        misses: dict[str, list[int]] = {}
        for i, cmdline in enumerate(cmdlines):
            self.predicts_total += 1
            cached = self._predict_cached(cmdline)
            if cached is not None:
                self.predict_cache_hits += 1
                results[i] = self._predict_response(cached)
            elif cmdline in misses:
                # Per-row replay would hit the cache entry the first
                # occurrence just stored.
                if self.predict_cache is not None:
                    self.predict_cache_hits += 1
                misses[cmdline].append(i)
            else:
                misses[cmdline] = [i]
        if misses:
            if self.vm.translator is None:
                for positions in misses.values():
                    for i in positions:
                        results[i] = self._predict_response({})
            else:
                order = list(misses)
                fvectors = [
                    self.vm.translator.build_fvector(
                        self.app.split_cmdline(cmdline)
                    )
                    for cmdline in order
                ]
                batched = self.vm.models.predict_all_batch(fvectors)
                for cmdline, labels in zip(order, batched):
                    levels = {
                        method: int(label)
                        for method, label in labels.items()
                    }
                    self._predict_store(cmdline, levels)
                    for i in misses[cmdline]:
                        results[i] = self._predict_response(levels)
        return results

    def _predict_response(self, levels: dict) -> dict:
        return {
            "levels": levels,
            "methods_modeled": len(self.vm.models),
            "confidence": self.vm.confidence.value,
            "confident": self.vm.confidence.confident,
            "generation": self.generation,
        }

    def swap(self) -> dict:
        """Offline refit + atomic generation flip + crash-safe save.

        The fresh generation enters **probation**: its first
        ``probation_window`` learned runs must keep mean accuracy within
        ``probation_margin`` of the pre-swap baseline (the mean of the
        most recent learned runs), or it is rolled back automatically.
        """
        baseline = (
            sum(self._recent_acc) / len(self._recent_acc)
            if self._recent_acc
            else None
        )
        self.vm.models.refit_all(jobs=self.vm.refit_jobs)
        generation = self.registry.note_swap(self.name)
        self._fingerprint = self._model_fingerprint()
        saved = self.registry.save(self.vm)
        runs = self.runs_since_swap
        self.runs_since_swap = 0
        self.swaps_total += 1
        if self.probation_window is not None and baseline is not None:
            self._probation = {
                "generation": generation,
                "baseline": baseline,
                "runs": 0,
                "acc_sum": 0.0,
            }
        return {
            "generation": generation,
            "runs_refit": runs,
            "observations": sum(
                len(self.vm.models.model_for(m).dataset)
                for m in self.vm.models.method_names
            ),
            "persisted": saved,
            "probation": self._probation is not None,
        }

    def due_for_swap(self) -> bool:
        return (
            self.refit_interval is not None
            and self.runs_since_swap >= self.refit_interval
        )

    # -- probation + automatic rollback ---------------------------------------
    def _note_probation_run(self, outcome: RunOutcome) -> dict | None:
        """Fold one run into the active probation; returns the rollback
        record when this run closed the window in the red, else None."""
        probation = self._probation
        if outcome.accuracy is not None and probation is not None:
            probation["runs"] += 1
            probation["acc_sum"] += outcome.accuracy
        if outcome.accuracy is not None:
            self._recent_acc.append(outcome.accuracy)
        if probation is None or probation["runs"] < self.probation_window:
            return None
        # Probation window closed: verdict time.
        self._probation = None
        mean = probation["acc_sum"] / probation["runs"]
        if mean >= probation["baseline"] - self.probation_margin:
            # The generation defended the baseline: it becomes the new
            # rollback target and the rollback streak resets.
            self._consecutive_rollbacks = 0
            self._last_good = state_to_dict(self.vm)
            return None
        return self._rollback(probation, mean)

    def _rollback(self, probation: dict, mean: float) -> dict:
        """Restore the last-good generation (see ``docs/robustness.md``).

        The restore itself is transactional (staged parse before any
        mutation) and the persist goes through the crash-safe envelope's
        atomic publish — a crash mid-rollback leaves either the old or
        the new state file, never a torn one, so the tenant reboots into
        a *whole* generation either way.
        """
        report = self.registry.report
        state_path = self.registry.state_path(self.name)
        from_generation = probation["generation"]
        if self._last_good is None:
            # Nothing trustworthy to restore — a cold tenant whose first
            # generation flunked. Serving the flunked model beats wiping
            # learning entirely; the ledger records that judgment call.
            report.record(
                "serving", "rollback-skipped", "no-last-good",
                detail=f"tenant {self.name}: generation {from_generation} "
                f"failed probation (mean accuracy {mean:.3f} vs baseline "
                f"{probation['baseline']:.3f}) but no generation ever "
                "passed probation; keeping it",
                path=str(state_path) if state_path else None,
            )
            return {
                "from_generation": from_generation,
                "to_generation": None,
                "watchdog": False,
            }
        self.rollbacks_total += 1
        self._consecutive_rollbacks += 1
        restore_state(self.vm, self._last_good)
        generation = self.registry.note_rollback(self.name)
        self._fingerprint = self._model_fingerprint()
        self.registry.save(self.vm)
        report.record(
            "serving", "rollback", "probation-failed",
            detail=f"tenant {self.name}: generation {from_generation} mean "
            f"accuracy {mean:.3f} fell more than {self.probation_margin} "
            f"below baseline {probation['baseline']:.3f}; restored "
            f"last-good state as generation {generation}",
            path=str(state_path) if state_path else None,
        )
        watchdog = self._consecutive_rollbacks >= self.max_rollbacks
        if watchdog:
            self._force_retrain()
        return {
            "from_generation": from_generation,
            "to_generation": self.generation,
            "watchdog": watchdog,
        }

    def _force_retrain(self) -> None:
        """Watchdog: repeated rollbacks mean the last-good snapshot no
        longer matches the traffic either (a real regime change, not a
        bad refit). Quarantine the state artifact for the post-mortem,
        re-train every model from only the recent window, and make the
        result the new baseline."""
        self.retrains_total += 1
        report = self.registry.report
        state_path = self.registry.state_path(self.name)
        if state_path is not None and self.registry.fs.exists(state_path):
            quarantine_file(
                state_path,
                "repeated-rollbacks",
                detail=f"tenant {self.name}: {self._consecutive_rollbacks} "
                "consecutive rollbacks; forcing re-train from the recent "
                "window",
                component="serving",
                fs=self.registry.fs,
                report=report,
            )
        for method in self.vm.models.method_names:
            self.vm.models.trim_method_history(method, self.vm.drift_window)
        self.vm.models.refit_all(jobs=self.vm.refit_jobs)
        if self.vm.drift is not None:
            self.vm.drift.reset()
        generation = self.registry.note_swap(self.name)
        self._fingerprint = self._model_fingerprint()
        self.registry.save(self.vm)
        report.record(
            "serving", "forced-retrain", "repeated-rollbacks",
            detail=f"tenant {self.name}: re-trained from the last "
            f"{self.vm.drift_window} observations per method as "
            f"generation {generation}",
            path=str(state_path) if state_path else None,
        )
        # The old last-good is demonstrably stale; the re-trained model
        # must earn rollback-target status through its own probation.
        self._last_good = None
        self._consecutive_rollbacks = 0
        baseline = (
            sum(self._recent_acc) / len(self._recent_acc)
            if self._recent_acc
            else None
        )
        if self.probation_window is not None and baseline is not None:
            self._probation = {
                "generation": generation,
                "baseline": baseline,
                "runs": 0,
                "acc_sum": 0.0,
            }

    # -- shared predict-result cache ----------------------------------------
    def _predict_key(self, cmdline: str) -> CacheKey:
        digest = hashlib.sha256(
            f"{self._fingerprint}|{cmdline}".encode("utf-8")
        ).hexdigest()[:24]
        return CacheKey(
            benchmark=self.name,
            scenario="predict",
            start=0,
            stop=0,
            seed=0,
            digest=digest,
        )

    def _predict_cached(self, cmdline: str) -> dict | None:
        if self.predict_cache is None:
            return None
        return self.predict_cache.get(self._predict_key(cmdline))

    def _predict_store(self, cmdline: str, levels: dict) -> None:
        if self.predict_cache is not None:
            self.predict_cache.put(self._predict_key(cmdline), levels)

    def stats(self) -> dict:
        return {
            "app": self.name,
            "generation": self.generation,
            "runs": self.runs_total,
            "predicts": self.predicts_total,
            "swaps": self.swaps_total,
            "runs_since_swap": self.runs_since_swap,
            "confidence": self.vm.confidence.value,
            "methods_modeled": len(self.vm.models),
            "predict_cache_hits": self.predict_cache_hits,
            "rollbacks": self.rollbacks_total,
            "retrains": self.retrains_total,
            "on_probation": self._probation is not None,
            "drift_detections": (
                self.vm.drift.detections if self.vm.drift is not None else 0
            ),
        }


def build_fleet(
    apps: list[Application],
    *,
    registry: ModelRegistry,
    config: VMConfig = DEFAULT_CONFIG,
    jit_cache_dir: str | None = None,
    predict_cache_dir: str | None = None,
    refit_interval: int | None = 25,
    refit_jobs: int = 1,
    engine: str = "auto",
    prior=None,
    probation_window: int | None = 8,
    probation_margin: float = 0.15,
    max_rollbacks: int = 2,
) -> list[Tenant]:
    """Assemble resident tenants over one shared pair of caches.

    The JIT artifact cache and the predict result cache are each a single
    instance handed to every tenant; passing ``None`` directories keeps
    them memory-only / disabled respectively. *engine* selects each
    resident VM's execution engine
    (see :class:`~repro.vm.interpreter.Interpreter`). *prior* is an
    optional shared cross-program prior
    (:class:`~repro.learning.forge.prior.CrossProgramPrior`): tenants
    admitted cold — no registry state yet — start from its per-method
    advice instead of unguided reactive optimization.
    """
    names = [app.name for app in apps]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate tenant names in fleet: {names}")
    artifact_cache = JITArtifactCache(jit_cache_dir)
    predict_cache = (
        ResultCache(predict_cache_dir, report=registry.report)
        if predict_cache_dir is not None
        else None
    )
    return [
        Tenant(
            app,
            registry=registry,
            config=config,
            artifact_cache=artifact_cache,
            predict_cache=predict_cache,
            refit_interval=refit_interval,
            refit_jobs=refit_jobs,
            engine=engine,
            prior=prior,
            probation_window=probation_window,
            probation_margin=probation_margin,
            max_rollbacks=max_rollbacks,
        )
        for app in apps
    ]
