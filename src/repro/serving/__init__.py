"""Prediction-as-a-service: the long-lived multi-tenant VM fleet.

This package turns the batch reproduction into a serving system: a pool
of resident :class:`~repro.core.evolvable.EvolvableVM` tenants behind an
asyncio front end (`repro serve`), with a crash-safe per-application
model registry, shared JIT-artifact and prediction-result caches,
predict batching, hot model swap, and queue-bound admission control.
``docs/serving.md`` documents the architecture, the request/response
schema, and the operator runbook.
"""

from .protocol import (
    OPS,
    bad_request_response,
    decode_line,
    encode_line,
    error_response,
    ok_response,
    shed_response,
    unknown_tenant_response,
    validate_request,
)
from .registry import ModelRegistry
from .server import FleetServer, ServerStats, serve_tcp
from .shards import ShardRouter, shard_of
from .tenant import Tenant, build_fleet

__all__ = [
    "OPS",
    "FleetServer",
    "ModelRegistry",
    "ServerStats",
    "ShardRouter",
    "Tenant",
    "shard_of",
    "bad_request_response",
    "build_fleet",
    "decode_line",
    "encode_line",
    "error_response",
    "ok_response",
    "serve_tcp",
    "shed_response",
    "unknown_tenant_response",
    "validate_request",
]
