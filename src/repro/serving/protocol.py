"""The serving wire schema: requests, responses, and the JSONL framing.

One request is one JSON object (one line on the TCP transport); one
response is one JSON object back. The schema is deliberately small and
fully machine-readable — every response carries an HTTP-flavored
``status`` so clients can branch without parsing prose:

Request fields:

- ``op`` — ``"run"`` (execute the tenant's application once and learn
  from it), ``"predict"`` (strategy prediction only: one flattened-forest
  pass, no execution, no training), ``"swap"`` (force an offline refit +
  atomic model-generation flip), ``"stats"`` (server introspection).
- ``app`` — tenant name (required for ``run``/``predict``/``swap``).
- ``cmdline`` — the application command line (``run``/``predict``).
- ``id`` — opaque client correlation token, echoed back verbatim.
- ``seed`` — per-run RNG seed (``run`` only; defaults to the tenant's
  running request index, which is what the serial replay uses).

Response statuses:

- ``200`` — success; payload fields depend on ``op``.
- ``400`` — malformed request (``error`` names the problem).
- ``404`` — unknown tenant.
- ``429`` — shed by admission control: the tenant's bounded queue was
  full. Carries ``queue_depth`` and ``queue_bound`` so a client can
  implement informed backoff. Sheds are counted per tenant and recorded
  in telemetry (``serve_shed`` events).
- ``500`` — the request raised inside the worker (``error`` carries the
  exception repr); the server itself keeps serving.

**Sharded transport** (``repro serve --shards N``): between the router
and a shard worker the same JSONL schema rides a *pipelined* connection —
the router tags every request with a ``rid`` (a router-scoped integer the
worker echoes back verbatim), so many requests can be in flight per
connection and responses may return in completion order. ``rid`` is
transport framing, not schema: it never reaches ``validate_request`` and
is stripped before the response goes back to the client. Two
router-only control ops ride the same framing: ``__sync__`` (resolve
once every accepted request — including trailing auto-swaps — has been
fully processed; the deterministic quiesce point before a planned kill)
and ``__shutdown__`` (drain, persist every tenant, reply with final
stats, close). Control ops are handled by the worker transport before
schema validation and are never valid on the public socket.

See ``docs/serving.md`` for the full surface and examples.
"""

from __future__ import annotations

import json

#: Operations a request may name.
OPS = ("run", "predict", "swap", "stats")

#: Ops that address one tenant (and therefore require ``app``).
TENANT_OPS = frozenset({"run", "predict", "swap"})

#: Router→worker control ops (pipelined shard transport only).
SHARD_SYNC_OP = "__sync__"
SHARD_SHUTDOWN_OP = "__shutdown__"
SHARD_CONTROL_OPS = frozenset({SHARD_SYNC_OP, SHARD_SHUTDOWN_OP})


def validate_request(request: object) -> list[str]:
    """Schema-check one decoded request; returns problems (empty = valid)."""
    problems: list[str] = []
    if not isinstance(request, dict):
        return ["request must be a JSON object"]
    op = request.get("op")
    if op not in OPS:
        problems.append(f"unknown op {op!r}")
        return problems
    if op in TENANT_OPS and not isinstance(request.get("app"), str):
        problems.append(f"op {op!r} requires a string 'app' field")
    if op in ("run", "predict") and not isinstance(
        request.get("cmdline"), str
    ):
        problems.append(f"op {op!r} requires a string 'cmdline' field")
    seed = request.get("seed")
    if seed is not None and not isinstance(seed, int):
        problems.append("'seed' must be an integer when present")
    return problems


def _base(request: dict, status: int) -> dict:
    response: dict = {"status": status, "op": request.get("op")}
    if request.get("id") is not None:
        response["id"] = request["id"]
    if request.get("app") is not None:
        response["app"] = request["app"]
    return response


def ok_response(request: dict, **payload) -> dict:
    response = _base(request, 200)
    response.update(payload)
    return response


def bad_request_response(request: dict, problems: list[str]) -> dict:
    response = _base(request, 400)
    response["error"] = "bad-request"
    response["problems"] = problems
    return response


def unknown_tenant_response(request: dict, known: list[str]) -> dict:
    response = _base(request, 404)
    response["error"] = "unknown-tenant"
    response["known_tenants"] = known
    return response


def shed_response(request: dict, queue_depth: int, queue_bound: int) -> dict:
    """The machine-readable 429: admission control refused the request."""
    response = _base(request, 429)
    response["error"] = "overloaded"
    response["queue_depth"] = queue_depth
    response["queue_bound"] = queue_bound
    return response


def error_response(request: dict, exc: BaseException) -> dict:
    response = _base(request, 500)
    response["error"] = f"{type(exc).__name__}: {exc}"
    return response


# ---------------------------------------------------------------------------
# JSONL framing for the TCP transport
# ---------------------------------------------------------------------------

def encode_line(obj: dict) -> bytes:
    """One message, one line (sorted keys: byte-stable for tests/logs)."""
    return (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")


def decode_line(line: bytes) -> dict | None:
    """Decode one received line; ``None`` for blank/unparseable input
    (the caller answers with a 400)."""
    text = line.decode("utf-8", errors="replace").strip()
    if not text:
        return None
    try:
        obj = json.loads(text)
    except json.JSONDecodeError:
        return None
    return obj if isinstance(obj, dict) else None
