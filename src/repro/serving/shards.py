"""Sharded multi-process serving: N worker fleets behind one router.

The asyncio :class:`~repro.serving.server.FleetServer` tops out at one
CPU no matter how many cores the host has — the GIL serializes every
tenant worker's Python. ``repro serve --shards N`` escapes that ceiling
without changing any per-tenant semantics:

- **Workers**: N forked processes, each running an ordinary
  :class:`FleetServer` over a deterministic hash-partition of the tenant
  fleet (:func:`shard_of` — stable across processes and restarts, so a
  respawned worker always owns exactly the tenants its predecessor did).
  All workers share one crash-safe
  :class:`~repro.serving.registry.ModelRegistry` root: tenant ownership
  is disjoint, so state files and per-tenant generation sidecars never
  contend, and hot swaps/rollbacks publish through the same envelope
  they do single-process.
- **Router**: an asyncio front end holding one *pipelined* JSONL
  connection per worker. Every request is tagged with a ``rid`` (see
  :mod:`repro.serving.protocol`); per-tenant ordering is preserved
  because a tenant maps to exactly one shard and each shard's requests
  are written in submission order over one connection. The router
  duck-types :meth:`FleetServer.submit`, so the public TCP transport
  (:func:`~repro.serving.server.serve_tcp`) works unchanged on top.
- **Death and respawn**: a dead worker fails its in-flight requests
  with machine-readable 500s (never a hang), lands a degradation record
  plus a ``serve_shard`` telemetry event, and is respawned immediately;
  the replacement cold-starts its tenants from the envelope — model
  state *and* generation counters restore, so responses keep reporting
  the right generation. Requests queued but not yet written simply wait
  for the replacement.
- **Telemetry**: each worker appends to ``<path>.shard<k>``; the router
  merges the shard files into the main log at shutdown and emits the
  fleet-level ``serve_shard`` lifecycle events itself.

The sharded study (:func:`~repro.experiments.server_study
.run_sharded_study`) asserts the load-bearing invariant end to end:
per-tenant response streams are bit-identical to a serial replay at
every shard count, including through a forced worker kill + respawn.
"""

from __future__ import annotations

import asyncio
import hashlib
import multiprocessing
import time

from pathlib import Path

from ..resilience.degradation import DegradationReport
from .protocol import (
    SHARD_SHUTDOWN_OP,
    SHARD_SYNC_OP,
    bad_request_response,
    decode_line,
    encode_line,
    error_response,
    ok_response,
    unknown_tenant_response,
    validate_request,
)
from .server import DEFAULT_BATCH_MAX, FleetServer

#: Seconds a worker gets to report its port before spawn fails.
SPAWN_TIMEOUT_S = 60.0


def shard_of(name: str, shards: int) -> int:
    """Deterministic tenant→shard assignment, stable across processes.

    ``hash()`` is salted per process (PYTHONHASHSEED), so a respawned
    worker computing its own partition must not use it; sha256 gives the
    same answer everywhere, forever.
    """
    if shards <= 1:
        return 0
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


# ---------------------------------------------------------------------------
# Worker side (runs in the forked process)
# ---------------------------------------------------------------------------

async def serve_pipelined(server: FleetServer, host: str = "127.0.0.1",
                          port: int = 0):
    """The worker-side transport: rid-pipelined JSONL over TCP.

    Unlike :func:`~repro.serving.server.serve_tcp` (strict
    request/response per connection), many requests ride in flight at
    once: each line is admitted synchronously in arrival order (so
    per-connection admission order is exactly the router's submission
    order) and its response is written whenever it completes, tagged
    with the request's echoed ``rid``. Control ops short-circuit before
    schema validation; ``__shutdown__`` resolves the returned future.
    """
    loop = asyncio.get_running_loop()
    finished: asyncio.Future = loop.create_future()

    async def handle(reader, writer):
        write_lock = asyncio.Lock()
        replies: set[asyncio.Task] = set()

        async def reply(rid, future):
            response = dict(await future)
            if rid is not None:
                response["rid"] = rid
            async with write_lock:
                writer.write(encode_line(_json_safe(response)))
                await writer.drain()

        def spawn_reply(rid, future) -> None:
            task = asyncio.create_task(reply(rid, future))
            replies.add(task)
            task.add_done_callback(replies.discard)

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                request = decode_line(line)
                rid = request.pop("rid", None) if request else None
                if request is None:
                    future = loop.create_future()
                    future.set_result(
                        bad_request_response({}, ["unparseable JSON line"])
                    )
                    spawn_reply(rid, future)
                elif request.get("op") == SHARD_SYNC_OP:
                    # Quiesce: every accepted request — including any
                    # trailing auto-swap — fully processed before the
                    # reply. The deterministic boundary a planned kill
                    # (or the kill-aware serial baseline) lines up on.
                    await server.drain()
                    future = loop.create_future()
                    future.set_result(ok_response(request))
                    spawn_reply(rid, future)
                elif request.get("op") == SHARD_SHUTDOWN_OP:
                    await server.stop(persist=True)
                    payload = server._stats_payload()
                    payload["server"]["latencies_ms"] = (
                        server.stats.latencies_ms
                    )
                    await reply(rid, _ready(loop, ok_response(
                        request, **payload
                    )))
                    if not finished.done():
                        finished.set_result(None)
                    break
                else:
                    spawn_reply(rid, server.submit_nowait(request))
        finally:
            if replies:
                await asyncio.gather(*replies, return_exceptions=True)
            writer.close()

    tcp = await asyncio.start_server(handle, host, port)
    return tcp, finished


def _ready(loop, value) -> asyncio.Future:
    future = loop.create_future()
    future.set_result(value)
    return future


def _json_safe(obj):
    import json

    try:
        json.dumps(obj)
        return obj
    except (TypeError, ValueError):
        return json.loads(json.dumps(obj, default=repr))


def shard_worker_main(factory, factory_args, shard_index: int,
                      shard_count: int, conn, options: dict) -> None:
    """Entry point of one forked shard worker process.

    *factory* is a module-level callable returning the **full** tenant
    application list; the worker keeps only its own hash-partition, so a
    respawn reconstructs an identical fleet from nothing but
    ``(factory, shard_index, shard_count)`` plus the registry root.
    """
    asyncio.run(
        _shard_worker_async(
            factory, factory_args, shard_index, shard_count, conn, options
        )
    )


async def _shard_worker_async(factory, factory_args, shard_index,
                              shard_count, conn, options) -> None:
    from ..experiments.telemetry import TelemetryLog
    from .registry import ModelRegistry
    from .tenant import build_fleet

    apps = [
        app
        for app in factory(*factory_args)
        if shard_of(app.name, shard_count) == shard_index
    ]
    registry = ModelRegistry(options.get("registry_dir"))
    telemetry = None
    if options.get("telemetry_path"):
        telemetry = TelemetryLog(
            f"{options['telemetry_path']}.shard{shard_index}",
            report=registry.report,
        )
    fleet = build_fleet(
        apps,
        registry=registry,
        config=options["config"],
        refit_interval=options.get("refit_interval", 25),
        refit_jobs=1,  # daemonized worker: no grandchild processes
    )
    server = FleetServer(
        fleet,
        registry,
        queue_bound=options.get("queue_bound", 128),
        batch_max=options.get("batch_max", DEFAULT_BATCH_MAX),
        workers=options.get("workers"),
        telemetry=telemetry,
    )
    await server.start()
    tcp, finished = await serve_pipelined(
        server, options.get("host", "127.0.0.1"), 0
    )
    port = tcp.sockets[0].getsockname()[1]
    conn.send({
        "port": port,
        "tenants": sorted(tenant.name for tenant in fleet),
        "startup": registry.startup_summary(),
    })
    conn.close()
    async with tcp:
        await finished
    if telemetry is not None:
        telemetry.close()


# ---------------------------------------------------------------------------
# Router side
# ---------------------------------------------------------------------------

class _Shard:
    """One worker process plus its pipelined connection, router-side."""

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.reader = None
        self.writer = None
        self.reader_task: asyncio.Task | None = None
        self.writer_task: asyncio.Task | None = None
        #: rid → (future, request) written to the worker, unanswered.
        self.pending: dict[int, tuple[asyncio.Future, dict]] = {}
        #: Requests admitted by the router, not yet written. Survives a
        #: worker death: the replacement drains it, so queued traffic
        #: waits instead of failing.
        self.outbound: asyncio.Queue = asyncio.Queue()
        self.tenants: list[str] = []
        self.startup: dict = {}
        self.connected = asyncio.Event()
        self.respawns = 0
        self.final_stats: dict | None = None


class ShardRouter:
    """Asyncio front end over N forked :class:`FleetServer` workers.

    Duck-types the :class:`FleetServer` submission surface
    (``submit`` / ``submit_nowait`` / ``drain`` / ``stop``), so both the
    public TCP transport and the study driver run unchanged on top.
    """

    def __init__(
        self,
        factory,
        factory_args: tuple = (),
        *,
        shards: int,
        registry_dir: str | None,
        config=None,
        refit_interval: int | None = 25,
        queue_bound: int = 128,
        batch_max: int = DEFAULT_BATCH_MAX,
        workers: int | None = None,
        telemetry=None,
        telemetry_path: str | None = None,
        host: str = "127.0.0.1",
        report: DegradationReport | None = None,
    ):
        from ..vm.config import DEFAULT_CONFIG

        self.factory = factory
        self.factory_args = factory_args
        self.shard_count = max(1, shards)
        self.telemetry = telemetry
        self.telemetry_path = telemetry_path
        self.report = report if report is not None else DegradationReport()
        self.host = host
        self._options = {
            "registry_dir": registry_dir,
            "config": config if config is not None else DEFAULT_CONFIG,
            "refit_interval": refit_interval,
            "queue_bound": queue_bound,
            "batch_max": batch_max,
            "workers": workers,
            "telemetry_path": telemetry_path,
            "host": host,
        }
        self._mp = multiprocessing.get_context("fork")
        self._shards = [_Shard(i) for i in range(self.shard_count)]
        self._tenant_names: list[str] = []
        self._next_rid = 0
        self._started = False
        self._stopping = False

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        if self._started:
            return
        self._tenant_names = sorted(
            app.name for app in self.factory(*self.factory_args)
        )
        await asyncio.gather(
            *(self._spawn(shard) for shard in self._shards)
        )
        self._started = True

    async def _spawn(self, shard: _Shard, *, respawn: bool = False) -> None:
        parent_conn, child_conn = self._mp.Pipe()
        shard.process = self._mp.Process(
            target=shard_worker_main,
            args=(self.factory, self.factory_args, shard.index,
                  self.shard_count, child_conn, self._options),
            daemon=True,
            name=f"repro-shard-{shard.index}",
        )
        shard.process.start()
        child_conn.close()
        deadline = time.monotonic() + SPAWN_TIMEOUT_S
        while not parent_conn.poll(0):
            if time.monotonic() > deadline or not shard.process.is_alive():
                raise RuntimeError(
                    f"shard {shard.index} failed to report its port"
                )
            await asyncio.sleep(0.02)
        info = parent_conn.recv()
        parent_conn.close()
        shard.tenants = info["tenants"]
        shard.startup = info["startup"]
        shard.reader, shard.writer = await asyncio.open_connection(
            self.host, info["port"]
        )
        shard.connected.set()
        shard.reader_task = asyncio.create_task(
            self._read_responses(shard), name=f"shard-{shard.index}-reader"
        )
        shard.writer_task = asyncio.create_task(
            self._write_requests(shard), name=f"shard-{shard.index}-writer"
        )
        self._note_lifecycle(
            shard,
            "respawn" if respawn else "spawn",
            detail=(
                "cold-started from the envelope after worker death"
                if respawn
                else None
            ),
        )

    def _note_lifecycle(self, shard: _Shard, action: str,
                        detail: str | None = None) -> None:
        if self.telemetry is not None:
            from ..experiments.telemetry import serve_event

            self.telemetry.append(
                serve_event(
                    "serve_shard",
                    shard=shard.index,
                    action=action,
                    tenants=list(shard.tenants),
                    detail=detail,
                )
            )

    # -- submission ----------------------------------------------------------
    def submit_nowait(self, request: dict) -> "asyncio.Future[dict]":
        """Admit one request; same contract as
        :meth:`FleetServer.submit_nowait` (synchronous, order-preserving:
        a tenant's requests reach its one shard in exactly this call
        order)."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        problems = validate_request(request)
        if problems:
            future.set_result(bad_request_response(
                request if isinstance(request, dict) else {}, problems
            ))
            return future
        if request["op"] == "stats":
            return asyncio.ensure_future(self._merged_stats(request))
        app = request["app"]
        if app not in self._tenant_names:
            future.set_result(
                unknown_tenant_response(request, self._tenant_names)
            )
            return future
        shard = self._shards[shard_of(app, self.shard_count)]
        shard.outbound.put_nowait((request, future))
        return future

    async def submit(self, request: dict) -> dict:
        if not self._started:
            raise RuntimeError("ShardRouter.start() has not been awaited")
        return await self.submit_nowait(request)

    async def _control(self, shard: _Shard, op: str) -> dict:
        """Send one control op to *shard* and await its reply."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        shard.outbound.put_nowait(({"op": op}, future))
        return await future

    async def sync(self) -> None:
        """Quiesce every worker: resolves once all accepted requests
        (auto-swaps included) are fully processed fleet-wide."""
        await asyncio.gather(
            *(self._control(shard, SHARD_SYNC_OP) for shard in self._shards)
        )

    # Alias so study/bench drivers written against FleetServer.drain work.
    drain = sync

    async def _merged_stats(self, request: dict) -> dict:
        responses = await asyncio.gather(
            *(self._control(shard, "stats") for shard in self._shards)
        )
        merged = _merge_stats_payloads(responses)
        merged["shards"] = [
            {
                "shard": shard.index,
                "tenants": shard.tenants,
                "respawns": shard.respawns,
                "alive": bool(
                    shard.process is not None and shard.process.is_alive()
                ),
            }
            for shard in self._shards
        ]
        return ok_response(request, **merged)

    # -- the per-shard pump tasks --------------------------------------------
    async def _write_requests(self, shard: _Shard) -> None:
        """Single writer per shard: outbound admission order is wire
        order, which is what preserves per-tenant request order."""
        while True:
            request, future = await shard.outbound.get()
            rid = self._next_rid
            self._next_rid += 1
            shard.pending[rid] = (future, request)
            line = dict(request)
            line["rid"] = rid
            try:
                shard.writer.write(encode_line(line))
                await shard.writer.drain()
            except (ConnectionError, OSError):
                # The reader task owns the death path; the request sits
                # in pending and is failed/respawned from there.
                return

    async def _read_responses(self, shard: _Shard) -> None:
        try:
            while True:
                line = await shard.reader.readline()
                if not line:
                    break
                response = decode_line(line)
                if response is None:
                    continue
                rid = response.pop("rid", None)
                entry = shard.pending.pop(rid, None)
                if entry is not None and not entry[0].done():
                    entry[0].set_result(response)
        except (ConnectionError, OSError):
            pass
        if not self._stopping:
            await self._handle_death(shard)

    async def _handle_death(self, shard: _Shard) -> None:
        """A worker died mid-stream: fail what it held, record it, and
        respawn — degradation recorded, never a hang."""
        shard.connected.clear()
        shard.respawns += 1
        if shard.writer_task is not None:
            shard.writer_task.cancel()
        failed = list(shard.pending.values())
        shard.pending.clear()
        for future, request in failed:
            if not future.done():
                future.set_result(
                    error_response(
                        request,
                        RuntimeError(
                            f"shard {shard.index} died with the request "
                            "in flight"
                        ),
                    )
                )
        self.report.record(
            "serving", "shard-respawn", "worker-died",
            detail=f"shard {shard.index} ({', '.join(shard.tenants)}): "
            f"worker process died; {len(failed)} in-flight request(s) "
            "failed with 500; tenants cold-started from the envelope",
            path=self._options.get("registry_dir"),
        )
        self._note_lifecycle(shard, "died")
        await self._spawn(shard, respawn=True)

    # -- shutdown ------------------------------------------------------------
    async def stop(self, *, persist: bool = True) -> dict:
        """Drain + persist every worker, merge telemetry, reap processes.

        Returns the merged final stats payload (same shape as the
        ``stats`` op, plus per-shard ``latencies_ms``).
        """
        self._stopping = True
        responses = []
        for shard in self._shards:
            try:
                response = await asyncio.wait_for(
                    self._control(shard, SHARD_SHUTDOWN_OP), SPAWN_TIMEOUT_S
                )
                shard.final_stats = response
                responses.append(response)
            except (asyncio.TimeoutError, ConnectionError, OSError):
                self.report.record(
                    "serving", "shard-kill", "shutdown-timeout",
                    detail=f"shard {shard.index} did not answer "
                    "__shutdown__; killed",
                )
            for task in (shard.reader_task, shard.writer_task):
                if task is not None:
                    task.cancel()
            if shard.process is not None:
                shard.process.join(timeout=10)
                if shard.process.is_alive():
                    shard.process.kill()
                    shard.process.join(timeout=10)
        self._merge_telemetry()
        self._started = False
        return _merge_stats_payloads(responses)

    def kill_shard(self, index: int) -> list[str]:
        """Forcibly kill one worker (the chaos hook the study uses).

        Returns the killed shard's tenant names. The reader task notices
        the dead connection and runs the ordinary death path: fail
        in-flight, record degradation, respawn from the envelope.
        """
        shard = self._shards[index]
        if shard.process is not None:
            shard.process.kill()
            shard.process.join(timeout=10)
        return list(shard.tenants)

    async def wait_respawn(self, index: int, min_respawns: int = 1) -> None:
        """Block until shard *index* has respawned and reconnected (the
        deterministic hand-off point after a planned :meth:`kill_shard`)."""
        shard = self._shards[index]
        while shard.respawns < min_respawns or not shard.connected.is_set():
            await asyncio.sleep(0.02)

    def _merge_telemetry(self) -> None:
        """Fold per-worker telemetry shard files into the main log."""
        if not self.telemetry_path:
            return
        main = Path(self.telemetry_path)
        for shard in self._shards:
            part = Path(f"{self.telemetry_path}.shard{shard.index}")
            if not part.exists():
                continue
            with main.open("a", encoding="utf-8") as out:
                out.write(part.read_text(encoding="utf-8"))
            part.unlink()


def _merge_stats_payloads(responses: list[dict]) -> dict:
    """Merge per-shard ``stats`` payloads into one fleet-wide payload."""
    server: dict = {
        "accepted": 0, "served": 0, "shed": 0, "errors": 0, "swaps": 0,
        "rollbacks": 0, "batches": 0, "batched_predicts": 0,
    }
    hops = 0
    size_sum = 0.0
    size_max = 0
    latencies: list[float] = []
    tenants: dict = {}
    registries: list[dict] = []
    for response in responses:
        if not isinstance(response, dict) or "server" not in response:
            continue
        part = response["server"]
        for key in server:
            server[key] += part.get(key, 0)
        dist = part.get("batch_sizes", {})
        hops += dist.get("count", 0)
        size_sum += dist.get("mean", 0.0) * dist.get("count", 0)
        size_max = max(size_max, dist.get("max", 0))
        latencies.extend(part.get("latencies_ms", ()))
        tenants.update(response.get("tenants", {}))
        if response.get("registry"):
            registries.append(response["registry"])
    server["batch_sizes"] = {
        "count": hops,
        "max": size_max,
        "mean": (size_sum / hops) if hops else 0.0,
    }
    if latencies:
        server["latencies_ms"] = latencies
    registry = {
        "registry": registries[0].get("registry") if registries else None,
        "tenants": sorted(
            name for reg in registries for name in reg.get("tenants", ())
        ),
        "restored": sorted(
            name for reg in registries for name in reg.get("restored", ())
        ),
        "cold_started": sorted(
            name
            for reg in registries
            for name in reg.get("cold_started", ())
        ),
        "quarantined": sum(reg.get("quarantined", 0) for reg in registries),
        "degradations": sum(
            reg.get("degradations", 0) for reg in registries
        ),
        "degraded": any(reg.get("degraded") for reg in registries),
    }
    return {
        "server": server,
        "tenants": dict(sorted(tenants.items())),
        "registry": registry,
    }
