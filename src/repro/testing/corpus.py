"""Reproducer corpus: minimized fuzz findings as replayable regressions.

Each corpus entry is an ordinary MiniLang source file (``<name>.ml``)
with a JSON sidecar (``<name>.json``) recording how it was found: the
fuzz seed and iteration index, the entry arguments, and which variants
diverged at the time. The tier-1 suite replays every entry through the
full differential matrix and asserts **zero** divergences — an entry
that diverges again means a fixed bug has reappeared.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..lang.compiler import compile_source
from ..vm.config import VMConfig
from .differential import (
    FUZZ_CONFIG,
    DifferentialReport,
    Variant,
    run_differential,
)


@dataclass(frozen=True)
class CorpusEntry:
    """One stored reproducer: source text plus its discovery metadata."""

    name: str
    source: str
    args: tuple = ()
    meta: dict = field(default_factory=dict)


def save_reproducer(
    directory: str | Path,
    source: str,
    *,
    seed: int,
    index: int,
    args: tuple = (),
    divergent: tuple[str, ...] = (),
) -> Path:
    """Write *source* and its sidecar under *directory*; return the .ml path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    name = f"fuzz_s{seed}_i{index}"
    ml_path = directory / f"{name}.ml"
    ml_path.write_text(source, encoding="utf-8")
    sidecar = {
        "seed": seed,
        "index": index,
        "args": list(args),
        "divergent": list(divergent),
    }
    (directory / f"{name}.json").write_text(
        json.dumps(sidecar, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return ml_path


def load_corpus(directory: str | Path) -> list[CorpusEntry]:
    """All corpus entries under *directory*, sorted by name.

    Missing sidecars are tolerated (hand-written entries default to no
    arguments), so dropping a bare ``.ml`` file into the corpus works.
    """
    directory = Path(directory)
    entries: list[CorpusEntry] = []
    if not directory.is_dir():
        return entries
    for ml_path in sorted(directory.glob("*.ml")):
        meta: dict = {}
        sidecar = ml_path.with_suffix(".json")
        if sidecar.exists():
            meta = json.loads(sidecar.read_text(encoding="utf-8"))
        entries.append(
            CorpusEntry(
                name=ml_path.stem,
                source=ml_path.read_text(encoding="utf-8"),
                args=tuple(meta.get("args", ())),
                meta=meta,
            )
        )
    return entries


def replay_corpus(
    directory: str | Path,
    variants: tuple[Variant, ...] | None = None,
    config: VMConfig = FUZZ_CONFIG,
) -> list[tuple[CorpusEntry, DifferentialReport]]:
    """Re-run every corpus entry through the differential matrix."""
    results = []
    for entry in load_corpus(directory):
        program = compile_source(entry.source, name=entry.name)
        report = run_differential(program, entry.args, variants, config)
        results.append((entry, report))
    return results
