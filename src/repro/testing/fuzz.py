"""Fuzz driver: generate → differential-check → minimize → store.

Ties the subsystem together. Iterations are deterministic in the fuzz
seed (iteration *i* is exactly ``generate(seed, i)``), sliced into
fixed-size chunks and fanned out through the experiment engine's
:func:`~repro.experiments.parallel.map_parallel` — the same process-pool
(with inline fallback) that powers parallel sweeps. Workers only report
*which* iterations diverged; the parent regenerates those programs,
delta-debugs them down to minimal reproducers, and (optionally) writes
them to the regression corpus.

A finding is reproducible from ``(seed, index)`` alone, so a report
line is enough to replay any failure locally.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..experiments.parallel import map_parallel
from ..lang.compiler import compile_source
from ..vm.config import VMConfig
from .corpus import save_reproducer
from .differential import (
    FUZZ_CONFIG,
    Variant,
    compare_engines,
    compile_module,
    module_diverges,
    module_engine_diverges,
    run_differential,
)
from .generator import generate
from .minimize import minimize
from .render import render_module

#: Iterations per worker chunk. Fixed (not derived from the job count) so
#: the set of programs checked is independent of ``--jobs``.
CHUNK = 25


@dataclass(frozen=True)
class FuzzFinding:
    """One diverging program, after minimization."""

    seed: int
    index: int
    args: tuple
    divergent: tuple[str, ...]
    source: str
    instructions: int
    reproducer: str | None = None

    def describe(self) -> str:
        return (
            f"seed={self.seed} index={self.index} "
            f"variants={','.join(self.divergent)} "
            f"minimized to {self.instructions} instruction(s)"
        )


@dataclass
class FuzzReport:
    """What one fuzz campaign checked and what it found."""

    seed: int
    iterations: int
    checked: int = 0
    skipped: int = 0
    findings: list[FuzzFinding] = field(default_factory=list)
    wall_s: float = 0.0
    parallel: bool = False

    @property
    def ok(self) -> bool:
        return not self.findings

    def describe(self) -> str:
        mode = "parallel" if self.parallel else "inline"
        return (
            f"{self.checked}/{self.iterations} program(s) checked ({mode}), "
            f"{self.skipped} skipped, {len(self.findings)} divergence(s), "
            f"{self.wall_s:.2f}s wall"
        )


def _fuzz_chunk(spec: tuple) -> tuple[int, int, list[tuple[int, tuple[str, ...]]]]:
    """Worker: check one iteration range, report diverging indices.

    Picklable top-level function; the payload stays tiny (counts plus
    ``(index, variant-names)`` pairs) so chunk results are cheap to ship
    back from pool workers.
    """
    seed, start, stop, deadline, config, engine_check = spec
    checked = 0
    skipped = 0
    hits: list[tuple[int, tuple[str, ...]]] = []
    for index in range(start, stop):
        if deadline is not None and time.time() >= deadline:
            break
        case = generate(seed, index)
        program = compile_source(case.source, name=f"fuzz_s{seed}_i{index}")
        if engine_check:
            # Engine mode: reference loop vs fast vs compiled tiers at
            # every level, strict comparison (clocks, samples, compile
            # events). Labels carry which engine pair disagreed.
            engine_report = compare_engines(program, case.args, config=config)
            checked += 1
            if engine_report.divergences:
                labels = tuple(
                    dict.fromkeys(
                        f"{'base' if d.level is None else f'L{d.level}'}"
                        f":{d.engine}:{d.field}"
                        for d in engine_report.divergences
                    )
                )
                hits.append((index, labels))
            continue
        report = run_differential(program, case.args, config=config)
        checked += 1
        if report.skipped:
            skipped += 1
        if report.divergences:
            hits.append((index, tuple(d.variant for d in report.divergences)))
    return checked, skipped, hits


def run_fuzz(
    seed: int = 0,
    iterations: int = 200,
    *,
    time_budget: float | None = None,
    jobs: int = 1,
    corpus_dir: str | None = None,
    minimize_findings: bool = True,
    variants: tuple[Variant, ...] | None = None,
    config: VMConfig = FUZZ_CONFIG,
    engine_check: bool = False,
) -> FuzzReport:
    """Run a fuzz campaign; returns a report whose ``ok`` means no findings.

    ``time_budget`` (seconds) caps wall-clock: chunks past the deadline
    stop checking, so ``checked`` may fall short of ``iterations``.
    ``variants`` narrows the matrix for the minimization predicate and
    the stored sidecar; workers always check the full default matrix.
    ``engine_check`` switches the oracle from the pass matrix to the
    three-way reference-vs-fast-vs-compiled engine comparison (strict:
    clocks, samples, and compile events must match bit-for-bit at every
    opt level; finding labels record which engine pair disagreed).
    """
    clock = time.perf_counter()
    deadline = time.time() + time_budget if time_budget is not None else None
    chunks = [
        (seed, start, min(start + CHUNK, iterations), deadline, config,
         engine_check)
        for start in range(0, iterations, CHUNK)
    ]
    results, parallel = map_parallel(_fuzz_chunk, chunks, max(1, jobs))
    report = FuzzReport(seed=seed, iterations=iterations, parallel=parallel)
    hits: list[tuple[int, tuple[str, ...]]] = []
    for checked, skipped, chunk_hits in results:
        report.checked += checked
        report.skipped += skipped
        hits.extend(chunk_hits)

    for index, divergent in sorted(hits):
        case = generate(seed, index)
        module = case.module
        if minimize_findings:
            if engine_check:
                predicate = lambda m: module_engine_diverges(  # noqa: E731
                    m, case.args, config=config
                )
            else:
                predicate = lambda m: module_diverges(  # noqa: E731
                    m, case.args, variants=variants, config=config
                )
            module = minimize(module, predicate)
        source = render_module(module)
        instructions = compile_module(module).total_size()
        reproducer = None
        if corpus_dir is not None:
            reproducer = str(
                save_reproducer(
                    corpus_dir,
                    source,
                    seed=seed,
                    index=index,
                    args=case.args,
                    divergent=divergent,
                )
            )
        report.findings.append(
            FuzzFinding(
                seed=seed,
                index=index,
                args=case.args,
                divergent=divergent,
                source=source,
                instructions=instructions,
                reproducer=reproducer,
            )
        )
    report.wall_s = time.perf_counter() - clock
    return report
