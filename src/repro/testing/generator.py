"""Seeded random MiniLang program generator for differential fuzzing.

Emits well-formed :mod:`repro.lang.ast` modules covering the whole
surface the optimizer touches: arithmetic (with short-circuit logic and
comparisons), nested control flow with ``break``/``continue``, calls
between functions, self-recursion (both tail and non-tail form, so
tail-call elimination gets real targets), array allocation/indexing, and
intrinsics including the heap ops (``alloc``/``retain``/``release``).

Every generated program is guaranteed, by construction, to

- **terminate** far below the fuel guard: all loops iterate a small
  constant number of times (``while`` loops count a protected variable
  down; ``continue`` is only emitted where the loop step still runs),
  recursion depth is a small constant, and helper call chains may only
  grow inside ``main``'s loops, not inside helper loops;
- **never fault**: divisors have the shape ``(e % 37) * (e % 37) + 1``
  (≥ 1 for any int or float ``e``), array indices are ``e % size`` with
  the size a known positive constant (non-negative in Python for any
  int ``e``), and intrinsic domains are respected (``sqrt``/``log``/
  ``burn``/``alloc`` arguments are clamped non-negative);
- **stay numerically tame**: assignments to accumulator variables are
  wrapped in ``% m`` so loop-carried values cannot grow unboundedly
  (a squaring accumulator would otherwise go doubly exponential).

Because faults and resource limits cannot occur, any observable
difference between two compilation configurations of a generated
program is a compiler bug, which is exactly the oracle
:mod:`repro.testing.differential` wants.

Generation is a pure function of ``(seed, index)`` — the same pair
always yields the identical program, so a fuzz finding is reproducible
from two integers.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from ..lang import ast
from .render import render_module

#: Modulus pool for taming loop-carried accumulators.
_TAME_MODS = (97, 1009, 9973, 99991)

#: Small float literals (exact in binary where possible; determinism only
#: requires that every config evaluates the same Python float ops).
_FLOAT_LITS = (0.5, 1.25, 2.5, 0.125, 3.0, 0.75)

_CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")
_ARITH_OPS = ("+", "-", "*")


@dataclass(frozen=True)
class GeneratedProgram:
    """One fuzz case: the AST, its rendered source, and entry arguments."""

    seed: int
    index: int
    module: ast.Module
    source: str
    args: tuple[int, ...]


def _I(value: int) -> ast.IntLit:
    return ast.IntLit(value=value)


def _bin(op: str, left: ast.Expr, right: ast.Expr) -> ast.Binary:
    return ast.Binary(op=op, left=left, right=right)


def _mod(expr: ast.Expr, m: int) -> ast.Binary:
    return _bin("%", expr, _I(m))


def _call(name: str, *args: ast.Expr) -> ast.Call:
    return ast.Call(callee=name, args=tuple(args))


class _FunctionGen:
    """Generates one function body under termination/type discipline.

    ``vars`` maps a name to ``"int"``, ``"float"``, or ``("arr", size)``.
    ``protected`` holds loop counters that statements must not reassign.
    """

    def __init__(
        self,
        rng: Random,
        params: tuple[str, ...],
        helpers: dict[str, int],
        is_main: bool,
    ):
        self.rng = rng
        self.vars: dict[str, object] = {p: "int" for p in params}
        self.protected: set[str] = set()
        self.helpers = helpers  # callee name -> arity (earlier functions only)
        self.is_main = is_main
        self.loop_depth = 0
        self.innermost_is_for = False
        self._counter = 0

    # -- naming ------------------------------------------------------------
    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _pick_var(self, kind: str, assignable: bool = False) -> str | None:
        names = [
            name
            for name, k in self.vars.items()
            if (k == kind if kind != "arr" else isinstance(k, tuple))
            and not (assignable and name in self.protected)
        ]
        return self.rng.choice(names) if names else None

    # -- expressions -------------------------------------------------------
    def int_expr(self, depth: int) -> ast.Expr:
        rng = self.rng
        if depth <= 0:
            roll = rng.random()
            name = self._pick_var("int")
            if name is not None and roll < 0.55:
                return ast.Name(ident=name)
            return _I(rng.randint(-9, 12))
        roll = rng.random()
        if roll < 0.30:
            return _bin(
                rng.choice(_ARITH_OPS),
                self.int_expr(depth - 1),
                self.int_expr(depth - 1),
            )
        if roll < 0.38:
            return self._guarded_div(depth)
        if roll < 0.48:
            return _bin(
                rng.choice(_CMP_OPS),
                self.int_expr(depth - 1),
                self.int_expr(depth - 1),
            )
        if roll < 0.56:
            return _bin(
                rng.choice(("&&", "||")),
                self.int_expr(depth - 1),
                self.int_expr(depth - 1),
            )
        if roll < 0.62:
            op = "-" if rng.random() < 0.7 else "!"
            return ast.Unary(op=op, operand=self.int_expr(depth - 1))
        if roll < 0.70:
            return self._int_intrinsic(depth)
        if roll < 0.78:
            read = self._array_read(depth)
            if read is not None:
                return read
        if roll < 0.86 and self._may_call():
            call = self._helper_call(depth)
            if call is not None:
                return call
        return self.int_expr(0)

    def _guarded_div(self, depth: int) -> ast.Expr:
        """``a / ((b % 37) * (b % 37) + 1)`` — the divisor is ≥ 1 for any
        int (Python's ``%`` with a positive modulus is non-negative)."""
        op = self.rng.choice(("/", "%"))
        b = _mod(self.int_expr(depth - 1), 37)
        divisor = _bin("+", _bin("*", b, b), _I(1))
        return _bin(op, self.int_expr(depth - 1), divisor)

    def _int_intrinsic(self, depth: int) -> ast.Expr:
        rng = self.rng
        roll = rng.random()
        if roll < 0.25:
            return _call("abs", self.int_expr(depth - 1))
        if roll < 0.45:
            return _call(
                rng.choice(("min", "max")),
                self.int_expr(depth - 1),
                self.int_expr(depth - 1),
            )
        if roll < 0.60:
            return _call("randint", _I(0), _I(rng.randint(1, 30)))
        if roll < 0.80:
            return _call("ftoi", self.float_expr(depth - 1, pure=True))
        arr = self._pick_var("arr")
        if arr is not None:
            return _call("len", ast.Name(ident=arr))
        return _call("abs", self.int_expr(depth - 1))

    def _array_read(self, depth: int) -> ast.Expr | None:
        name = self._pick_var("arr")
        if name is None:
            return None
        size = self.vars[name][1]
        return ast.Index(
            array=ast.Name(ident=name),
            index=_mod(self.int_expr(depth - 1), size),
        )

    def _may_call(self) -> bool:
        # Helper loops must not multiply the cost of callees (a chain of
        # helpers each calling the previous inside a loop is exponential);
        # main's loops may, which is what makes its callees hot.
        return bool(self.helpers) and (self.is_main or self.loop_depth == 0)

    def _helper_call(self, depth: int) -> ast.Expr | None:
        name = self.rng.choice(sorted(self.helpers))
        arity = self.helpers[name]
        args = tuple(_mod(self.int_expr(depth - 1), 97) for _ in range(arity))
        return _call(name, *args)

    def float_expr(self, depth: int, pure: bool = False) -> ast.Expr:
        """A float-typed expression; ``pure`` forbids float-variable leaves
        (used for loop-carried float assignments so growth stays additive).
        """
        rng = self.rng
        if depth <= 0:
            name = None if pure else self._pick_var("float")
            if name is not None and rng.random() < 0.5:
                return ast.Name(ident=name)
            return ast.FloatLit(value=rng.choice(_FLOAT_LITS))
        roll = rng.random()
        if roll < 0.30:
            return _bin(
                rng.choice(_ARITH_OPS),
                self.float_expr(depth - 1, pure),
                self.float_expr(depth - 1, pure),
            )
        if roll < 0.45:
            return _call("itof", _mod(self.int_expr(depth - 1), 1000))
        if roll < 0.55:
            return _call("sqrt", _mod(self.int_expr(depth - 1), 1000))
        if roll < 0.62:
            return _call("log", _bin("+", _mod(self.int_expr(depth - 1), 999), _I(1)))
        if roll < 0.70:
            return _call("exp", _mod(self.int_expr(depth - 1), 20))
        if roll < 0.80:
            return _call(rng.choice(("sin", "cos")), self.float_expr(depth - 1, pure))
        if roll < 0.88:
            return _call("rand")
        return self.float_expr(0, pure)

    # -- statements --------------------------------------------------------
    def block(self, budget: int, nesting: int) -> ast.Block:
        statements: list[ast.Stmt] = []
        for _ in range(budget):
            statements.append(self.statement(nesting))
        return ast.Block(statements=tuple(statements))

    def scoped_block(self, budget: int, nesting: int) -> ast.Block:
        """A block that opens a fresh scope at execution time: variables
        declared inside must not leak into the generator's environment, or
        later statements would reference out-of-scope names."""
        saved_vars = dict(self.vars)
        saved_protected = set(self.protected)
        block = self.block(budget, nesting)
        self.vars = saved_vars
        self.protected = saved_protected
        return block

    def statement(self, nesting: int) -> ast.Stmt:
        rng = self.rng
        roll = rng.random()
        if roll < 0.16:
            return self._var_decl()
        if roll < 0.34:
            assign = self._assign()
            if assign is not None:
                return assign
            return self._var_decl()
        if roll < 0.44:
            return self._effect_stmt()
        if roll < 0.50:
            write = self._array_write()
            if write is not None:
                return write
            return self._effect_stmt()
        if roll < 0.66 and nesting > 0:
            return self._if_stmt(nesting)
        if roll < 0.80 and nesting > 0 and self.loop_depth < 2:
            return self._loop(nesting)
        if roll < 0.84 and self.loop_depth > 0:
            return self._break_or_continue()
        if roll < 0.88:
            return ast.Return(value=_mod(self.int_expr(2), 99991))
        return self._effect_stmt()

    def _var_decl(self) -> ast.Stmt:
        rng = self.rng
        roll = rng.random()
        # The initializer must be generated *before* the name is visible:
        # MiniLang (like most languages) rejects a declaration whose
        # initializer reads the variable being declared.
        if roll < 0.55:
            init = self._tamed_int(2)
            name = self._fresh("v")
            self.vars[name] = "int"
            return ast.VarDecl(name=name, init=init)
        if roll < 0.80:
            init = self.float_expr(2, pure=True)
            name = self._fresh("f")
            self.vars[name] = "float"
            return ast.VarDecl(name=name, init=init)
        name = self._fresh("a")
        size = rng.randint(1, 8)
        self.vars[name] = ("arr", size)
        return ast.VarDecl(name=name, init=_call("array", _I(size)))

    def _tamed_int(self, depth: int) -> ast.Expr:
        """An int expression safe to store into a loop-carried variable."""
        return _mod(self.int_expr(depth), self.rng.choice(_TAME_MODS))

    def _assign(self) -> ast.Stmt | None:
        rng = self.rng
        if rng.random() < 0.75:
            name = self._pick_var("int", assignable=True)
            if name is None:
                return None
            return ast.Assign(name=name, value=self._tamed_int(2))
        name = self._pick_var("float", assignable=True)
        if name is None:
            return None
        fresh = self.float_expr(2, pure=True)
        if rng.random() < 0.6:
            value: ast.Expr = _bin("+", ast.Name(ident=name), fresh)
        else:
            value = fresh
        return ast.Assign(name=name, value=value)

    def _array_write(self) -> ast.Stmt | None:
        name = self._pick_var("arr")
        if name is None:
            return None
        size = self.vars[name][1]
        return ast.IndexAssign(
            array=ast.Name(ident=name),
            index=_mod(self.int_expr(1), size),
            value=self._tamed_int(2),
        )

    def _effect_stmt(self) -> ast.Stmt:
        rng = self.rng
        roll = rng.random()
        if roll < 0.30:
            arg = (
                self.float_expr(1, pure=True)
                if rng.random() < 0.3
                else self.int_expr(2)
            )
            return ast.ExprStmt(expr=_call("print", arg))
        if roll < 0.55:
            return ast.ExprStmt(
                expr=_call("burn", _mod(self.int_expr(1), 400))
            )
        if roll < 0.70:
            return ast.ExprStmt(
                expr=_call("alloc", _bin("+", _mod(self.int_expr(1), 1500), _I(16)))
            )
        if roll < 0.80:
            return ast.ExprStmt(
                expr=_call("retain", _bin("+", _mod(self.int_expr(1), 800), _I(8)))
            )
        if roll < 0.86:
            return ast.ExprStmt(expr=_call("release", _mod(self.int_expr(1), 800)))
        if self._may_call():
            call = self._helper_call(2)
            if call is not None:
                return ast.ExprStmt(expr=call)
        return ast.ExprStmt(expr=_call("burn", _mod(self.int_expr(1), 200)))

    def _if_stmt(self, nesting: int) -> ast.Stmt:
        rng = self.rng
        cond = self.int_expr(2)
        then_body = self.scoped_block(rng.randint(1, 3), nesting - 1)
        else_body = (
            self.scoped_block(rng.randint(1, 3), nesting - 1)
            if rng.random() < 0.5
            else None
        )
        return ast.If(cond=cond, then_body=then_body, else_body=else_body)

    def _loop(self, nesting: int) -> ast.Stmt:
        rng = self.rng
        bound = rng.randint(1, 6)
        outer_for = self.innermost_is_for
        saved_vars = dict(self.vars)
        saved_protected = set(self.protected)
        self.loop_depth += 1
        if rng.random() < 0.6:
            self.innermost_is_for = True
            name = self._fresh("i")
            self.vars[name] = "int"
            self.protected.add(name)
            body = self.block(rng.randint(1, 4), nesting - 1)
            stmt: ast.Stmt = ast.For(
                init=ast.VarDecl(name=name, init=_I(0)),
                cond=_bin("<", ast.Name(ident=name), _I(bound)),
                step=ast.Assign(
                    name=name, value=_bin("+", ast.Name(ident=name), _I(1))
                ),
                body=body,
            )
        else:
            # `while` counts a protected variable down; the decrement is the
            # final statement, so `continue` would skip it — the statement
            # generator only emits `continue` when the innermost loop is a
            # `for` (whose step always runs).
            self.innermost_is_for = False
            name = self._fresh("w")
            self.vars[name] = "int"
            self.protected.add(name)
            body_stmts = list(
                self.block(rng.randint(1, 3), nesting - 1).statements
            )
            body_stmts.append(
                ast.Assign(name=name, value=_bin("-", ast.Name(ident=name), _I(1)))
            )
            stmt = ast.Block(
                statements=(
                    ast.VarDecl(name=name, init=_I(bound)),
                    ast.While(
                        cond=_bin(">", ast.Name(ident=name), _I(0)),
                        body=ast.Block(statements=tuple(body_stmts)),
                    ),
                )
            )
        self.loop_depth -= 1
        self.innermost_is_for = outer_for
        self.vars = saved_vars
        self.protected = saved_protected
        return stmt

    def _break_or_continue(self) -> ast.Stmt:
        if self.innermost_is_for and self.rng.random() < 0.5:
            return ast.Continue()
        return ast.Break()


def _gen_recursive(rng: Random, name: str) -> ast.Function:
    """A self-recursive function, tail or non-tail form, depth ≤ 25."""
    n, acc = ast.Name(ident="n"), ast.Name(ident="acc")
    body_expr_pool: tuple[ast.Expr, ...] = (
        _bin("+", acc, n),
        _bin("+", _bin("*", acc, _I(rng.randint(2, 5))), n),
        _bin("-", _bin("*", n, n), acc),
        _bin("+", acc, _bin("*", n, _I(rng.randint(1, 7)))),
    )
    step = _mod(rng.choice(body_expr_pool), 9973)
    rec_args = (_bin("-", n, _I(1)), step)
    if rng.random() < 0.5:
        # Tail form: `return rec(n - 1, step);` — the `CALL self; RET`
        # pattern tail-call elimination rewrites.
        tail: ast.Stmt = ast.Return(value=_call(name, *rec_args))
    else:
        tail = ast.Return(
            value=_mod(
                _bin("+", _I(rng.randint(1, 9)), _call(name, *rec_args)), 9973
            )
        )
    return ast.Function(
        name=name,
        params=("n", "acc"),
        body=ast.Block(
            statements=(
                ast.If(
                    cond=_bin("<=", n, _I(0)),
                    then_body=ast.Block(
                        statements=(ast.Return(value=_mod(acc, 9973)),)
                    ),
                    else_body=None,
                ),
                tail,
            )
        ),
    )


def generate(seed: int, index: int) -> GeneratedProgram:
    """Generate fuzz case *index* of stream *seed* (pure and deterministic)."""
    rng = Random(seed * 1_000_003 + index * 7919 + 1)

    functions: list[ast.Function] = []
    helpers: dict[str, int] = {}

    for h in range(rng.randint(0, 2)):
        name = f"h{h}"
        arity = rng.randint(1, 2)
        params = tuple(f"p{k}" for k in range(arity))
        gen = _FunctionGen(rng, params, dict(helpers), is_main=False)
        stmts = list(gen.block(rng.randint(1, 4), nesting=2).statements)
        stmts.append(ast.Return(value=_mod(gen.int_expr(2), 9973)))
        functions.append(
            ast.Function(name=name, params=params, body=ast.Block(statements=tuple(stmts)))
        )
        helpers[name] = arity

    if rng.random() < 0.55:
        rec = _gen_recursive(rng, f"r{len(functions)}")
        functions.append(rec)
        # Recursive functions are entered with a constant depth argument so
        # call sites look like `r(12, k)`; register arity 2 but wrap calls.
        helpers[rec.name] = 2

    main_arity = rng.randint(0, 2)
    params = tuple(f"arg{k}" for k in range(main_arity))
    gen = _FunctionGen(rng, params, helpers, is_main=True)
    stmts = list(gen.block(rng.randint(2, 6), nesting=3).statements)
    result_vars = [n for n, k in gen.vars.items() if k == "int"]
    acc: ast.Expr = _I(rng.randint(0, 7))
    for var in result_vars[:6]:
        acc = _bin("+", _bin("*", acc, _I(3)), ast.Name(ident=var))
    stmts.append(ast.Return(value=_mod(acc, 99991)))
    functions.append(
        ast.Function(name="main", params=params, body=ast.Block(statements=tuple(stmts)))
    )

    module = ast.Module(functions=tuple(functions))
    # Recursion depth arguments: any helper call already modulo-wraps its
    # arguments to < 97, which bounds recursion depth far below the
    # call-depth guard (256) even before tail-call elimination.
    args = tuple(rng.randint(0, 9) for _ in range(main_arity))
    return GeneratedProgram(
        seed=seed,
        index=index,
        module=module,
        source=render_module(module),
        args=args,
    )


def generate_batch(seed: int, n: int) -> list[GeneratedProgram]:
    """Cases ``0..n-1`` of stream *seed*, in index order.

    Each case is still an independent pure function of ``(seed, index)``
    — batching adds no shared RNG state — so any slicing of the stream
    across processes (the forge's chunked workers, the fuzz harness's
    iteration chunks) reproduces the identical programs.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    return [generate(seed, index) for index in range(n)]
