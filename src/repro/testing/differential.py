"""Differential execution: one program, every compilation configuration.

The oracle behind the fuzzing harness (in the spirit of compilation-
forking): run the same program

- through the plain interpreter (every method stays at the baseline
  level — the reference semantics),
- through the JIT pipeline forced to each optimization level, and
- through the level-2 pipeline restricted to each single pass,

and require that every configuration observes the identical **result**,
**output trace** (``print`` lines), and **heap-effect summary**
(allocation volume/count, GC count and pause cycles, peak live bytes).
Cycle counts legitimately differ between levels — that is the entire
point of tiered compilation — so they are excluded from the comparison.

Resource-limit outcomes (fuel, stack depth) in the *reference* make a
program incomparable and are reported as skipped: tail-call elimination
legitimately turns stack-overflow programs into loops. Programs from
:mod:`repro.testing.generator` never hit either limit by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang import ast
from ..lang.compiler import compile_source
from ..lang.errors import LangError
from ..vm.config import VMConfig
from ..vm.errors import (
    ExecutionError,
    FuelExhaustedError,
    StackOverflowError,
    VerificationError,
)
from ..vm.interpreter import Interpreter
from ..vm.opt.jit import JITCompiler
from ..vm.opt.passes import (
    constant_folding,
    dead_code_elimination,
    eliminate_tail_calls,
    inline_calls,
    jump_threading,
    peephole,
)
from ..vm.program import Program
from .render import render_module

#: Every optimization pass, by the short name variants are labeled with.
PASS_REGISTRY: tuple[tuple[str, object], ...] = (
    ("constant_folding", constant_folding),
    ("peephole", peephole),
    ("dce", dead_code_elimination),
    ("jump_threading", jump_threading),
    ("inline", inline_calls),
    ("tail_call", eliminate_tail_calls),
)

#: VM configuration for fuzz runs: the default cost model with a tighter
#: fuel guard (generated programs run in thousands of instructions, so a
#: runaway case fails fast instead of burning the default 200M budget).
FUZZ_CONFIG = VMConfig(max_instructions=2_000_000)


@dataclass(frozen=True)
class Variant:
    """One compilation configuration of the differential matrix.

    ``level`` None means the plain interpreter (all methods baseline);
    ``tier_passes`` overrides the pass pipelines (single-pass variants).
    ``engine`` selects the dispatch engine. The ordinary matrix pins
    ``fast`` (so pass/level divergence hunting doesn't pay closure
    codegen for every variant of every program); cross-engine semantics
    — including the compiled tier — are checked by the dedicated
    engine-equivalence mode (:func:`compare_engines`, ``--engines``).
    """

    name: str
    level: int | None = None
    tier_passes: dict[int, tuple] | None = None
    engine: str = "fast"


def default_variants() -> tuple[Variant, ...]:
    """The full matrix: every opt level plus every single-pass config."""
    variants = [Variant("L0", 0), Variant("L1", 1), Variant("L2", 2)]
    for name, fn in PASS_REGISTRY:
        variants.append(Variant(f"pass:{name}", 2, {2: (fn,)}))
    return tuple(variants)


REFERENCE = Variant("interp", None, None, engine="reference")


@dataclass(frozen=True)
class Outcome:
    """What one execution observed, reduced to the level-invariant parts.

    ``kind`` is ``ok`` (ran to completion), ``error`` (a program fault —
    must reproduce identically in every configuration), or ``resource``
    (fuel/stack limit — makes the program incomparable).
    """

    kind: str
    value: str = ""
    error: str = ""
    output: tuple[str, ...] = ()
    heap: tuple = ()

    def describe(self) -> str:
        if self.kind == "ok":
            return f"result={self.value} output={len(self.output)} lines"
        return f"{self.kind}:{self.error}"


@dataclass(frozen=True)
class Divergence:
    """A variant that observed different semantics than the reference."""

    variant: str
    reference: Outcome
    observed: Outcome

    def describe(self) -> str:
        return (
            f"{self.variant}: expected {self.reference.describe()}, "
            f"got {self.observed.describe()}"
        )


@dataclass
class DifferentialReport:
    """Outcome matrix of one program under every variant."""

    reference: Outcome
    outcomes: dict[str, Outcome] = field(default_factory=dict)
    divergences: list[Divergence] = field(default_factory=list)
    skipped: bool = False  # reference hit a resource limit


def _heap_summary(interp: Interpreter) -> tuple:
    heap = interp.intrinsic_ctx.heap
    stats = heap.stats
    return (
        heap.policy,
        stats.allocation_count,
        stats.allocated_bytes,
        stats.gc_count,
        stats.gc_pause_cycles,
        stats.peak_live_bytes,
    )


def execute_variant(
    program: Program,
    args: tuple,
    variant: Variant,
    config: VMConfig = FUZZ_CONFIG,
    rng_seed: int = 0,
) -> Outcome:
    """Run *program* under one compilation configuration."""
    jit = JITCompiler(program, config, tier_passes=variant.tier_passes)
    level = variant.level
    hook = None if level is None else (lambda name: level)
    interp = Interpreter(
        program,
        config=config,
        rng_seed=rng_seed,
        jit=jit,
        first_invocation_hook=hook,
        engine=variant.engine,
    )
    try:
        interp.run(args)
    except (FuelExhaustedError, StackOverflowError) as exc:
        return Outcome(
            kind="resource",
            error=type(exc).__name__,
            output=tuple(interp.output),
            heap=_heap_summary(interp),
        )
    except ExecutionError as exc:
        # Compare faults by type: the message may embed configuration-
        # dependent detail (pcs shift under optimization), but whether and
        # how a program faults must not change.
        return Outcome(
            kind="error",
            error=type(exc).__name__,
            output=tuple(interp.output),
            heap=_heap_summary(interp),
        )
    return Outcome(
        kind="ok",
        value=repr(interp.result),
        output=tuple(interp.output),
        heap=_heap_summary(interp),
    )


def run_differential(
    program: Program,
    args: tuple,
    variants: tuple[Variant, ...] | None = None,
    config: VMConfig = FUZZ_CONFIG,
    rng_seed: int = 0,
) -> DifferentialReport:
    """Run the full differential matrix for one program."""
    if variants is None:
        variants = default_variants()
    reference = execute_variant(program, args, REFERENCE, config, rng_seed)
    report = DifferentialReport(reference=reference)
    if reference.kind == "resource":
        report.skipped = True
        return report
    for variant in variants:
        observed = execute_variant(program, args, variant, config, rng_seed)
        report.outcomes[variant.name] = observed
        if observed != reference:
            report.divergences.append(
                Divergence(
                    variant=variant.name, reference=reference, observed=observed
                )
            )
    return report


# ---------------------------------------------------------------------------
# Engine-equivalence mode: reference loop vs. fast vs. compiled tiers
# ---------------------------------------------------------------------------

#: Levels the engine comparison forces via the first-invocation hook
#: (None = everything stays at baseline).
ENGINE_LEVELS: tuple[int | None, ...] = (None, 0, 1, 2)

#: Engines compared by default; the first entry is the oracle the others
#: are diffed against.
ENGINE_SET: tuple[str, ...] = ("reference", "fast", "compiled")


@dataclass(frozen=True)
class EngineObservation:
    """Everything one engine observed — *including* the virtual clocks.

    The ordinary differential matrix excludes cycle counts (levels differ
    by design); between the two dispatch engines at the *same* level they
    must match bit-for-bit, so this observation captures total cycles,
    compile cycles, instruction count, per-method samples and cycle
    accounts, and the full compile-event sequence. For ``error`` and
    ``resource`` outcomes only the fault type, output, and heap summary
    are compared: the engines batch sampler bookkeeping differently, so
    mid-fault bookkeeping is only loosely defined (a tick crossed by the
    instruction that faults may or may not have been registered yet).
    """

    kind: str
    value: str = ""
    error: str = ""
    output: tuple[str, ...] = ()
    heap: tuple = ()
    total_cycles: float = 0.0
    compile_cycles: float = 0.0
    instructions: int = 0
    samples: tuple = ()
    method_cycles: tuple = ()
    method_work: tuple = ()
    final_levels: tuple = ()
    compile_events: tuple = ()


@dataclass(frozen=True)
class EngineDivergence:
    """One field where an engine disagreed with the oracle.

    ``engine`` records which engine pair disagreed (oracle vs. this
    engine) — minimized fuzz findings carry it through their labels, so
    a reproducer names the culprit tier directly.
    """

    level: int | None
    field: str
    reference: str
    observed: str
    engine: str = "fast"

    def describe(self) -> str:
        label = "base" if self.level is None else f"L{self.level}"
        return (
            f"engines@{label} [reference vs {self.engine}]: {self.field} "
            f"expected {self.reference}, got {self.observed}"
        )


@dataclass
class EngineReport:
    """Engine-equivalence matrix of one program across opt levels.

    ``observations[level]`` maps engine name → what it observed.
    """

    observations: dict[object, dict[str, EngineObservation]] = field(
        default_factory=dict
    )
    divergences: list[EngineDivergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


def execute_engine(
    program: Program,
    args: tuple,
    engine: str,
    level: int | None,
    config: VMConfig = FUZZ_CONFIG,
    rng_seed: int = 0,
) -> EngineObservation:
    """Run *program* on one engine with every method forced to *level*."""
    hook = None if level is None else (lambda name: level)
    interp = Interpreter(
        program,
        config=config,
        rng_seed=rng_seed,
        first_invocation_hook=hook,
        engine=engine,
    )
    try:
        interp.run(args)
    except (FuelExhaustedError, StackOverflowError) as exc:
        return EngineObservation(
            kind="resource",
            error=type(exc).__name__,
            output=tuple(interp.output),
            heap=_heap_summary(interp),
        )
    except ExecutionError as exc:
        return EngineObservation(
            kind="error",
            error=type(exc).__name__,
            output=tuple(interp.output),
            heap=_heap_summary(interp),
        )
    profile = interp.profile
    return EngineObservation(
        kind="ok",
        value=repr(interp.result),
        output=tuple(interp.output),
        heap=_heap_summary(interp),
        total_cycles=profile.total_cycles,
        compile_cycles=profile.compile_cycles,
        instructions=profile.instructions_executed,
        samples=tuple(sorted(profile.samples.items())),
        method_cycles=tuple(sorted(profile.method_cycles.items())),
        method_work=tuple(sorted(profile.method_work.items())),
        final_levels=tuple(sorted(profile.final_levels.items())),
        compile_events=tuple(
            (e.method, e.level, e.cycles, e.at_clock)
            for e in profile.compile_events
        ),
    )


#: Fields compared per outcome kind. ``ok`` compares everything.
_ENGINE_FAULT_FIELDS = ("kind", "error", "output", "heap")


def compare_engines(
    program: Program,
    args: tuple,
    levels: tuple[int | None, ...] = ENGINE_LEVELS,
    config: VMConfig = FUZZ_CONFIG,
    rng_seed: int = 0,
    engines: tuple[str, ...] = ENGINE_SET,
) -> EngineReport:
    """Run every engine in *engines* side by side at every level.

    ``engines[0]`` is the oracle (normally the reference loop); each of
    the others is diffed against it field by field, appending one
    :class:`EngineDivergence` per mismatch — the acceptance oracle for
    the fast and compiled tiers (zero divergences over the corpus and
    the fuzz stream).
    """
    report = EngineReport()
    oracle_engine = engines[0]
    for level in levels:
        ref = execute_engine(
            program, args, oracle_engine, level, config, rng_seed
        )
        observed = {oracle_engine: ref}
        report.observations[level] = observed
        for engine in engines[1:]:
            obs = execute_engine(program, args, engine, level, config, rng_seed)
            observed[engine] = obs
            if ref.kind == "ok" and obs.kind == "ok":
                fields = [f.name for f in ref.__dataclass_fields__.values()]
            else:
                fields = list(_ENGINE_FAULT_FIELDS)
            for name in fields:
                a = getattr(ref, name)
                b = getattr(obs, name)
                if a != b:
                    report.divergences.append(
                        EngineDivergence(
                            level=level,
                            field=name,
                            reference=repr(a),
                            observed=repr(b),
                            engine=engine,
                        )
                    )
    return report


def compile_module(module: ast.Module) -> Program:
    """Compile an AST module through the full front end (render + parse),
    so exactly what a corpus file replays is what gets checked."""
    return compile_source(render_module(module), name="fuzz")


def module_diverges(
    module: ast.Module,
    args: tuple,
    variants: tuple[Variant, ...] | None = None,
    config: VMConfig = FUZZ_CONFIG,
    rng_seed: int = 0,
) -> bool:
    """True when *module* compiles and shows at least one divergence.

    Invalid candidates (the minimizer produces plenty) count as
    non-diverging rather than erroring out.
    """
    try:
        program = compile_module(module)
    except (LangError, VerificationError):
        return False
    report = run_differential(program, args, variants, config, rng_seed)
    return bool(report.divergences)


def module_engine_diverges(
    module: ast.Module,
    args: tuple,
    config: VMConfig = FUZZ_CONFIG,
    rng_seed: int = 0,
    engines: tuple[str, ...] = ENGINE_SET,
) -> bool:
    """Minimization predicate for engine-equivalence findings."""
    try:
        program = compile_module(module)
    except (LangError, VerificationError):
        return False
    return not compare_engines(
        program, args, config=config, rng_seed=rng_seed, engines=engines
    ).ok
