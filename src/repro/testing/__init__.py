"""Differential fuzzing & invariant harness for the VM/JIT pipeline.

Pieces, in data-flow order:

- :mod:`.generator` — seeded random MiniLang program generator
  (terminating, fault-free, numerically tame by construction);
- :mod:`.render` — AST → MiniLang source, so corpus entries are plain
  readable programs;
- :mod:`.differential` — one program through the interpreter, every opt
  level, and every single-pass pipeline; level-invariant observables
  (result, output trace, heap-effect summary) must match;
- :mod:`.minimize` — delta-debugging reducer for diverging programs;
- :mod:`.corpus` — minimized reproducers stored under ``tests/corpus/``
  and replayed by the tier-1 suite;
- :mod:`.fuzz` — the campaign driver behind ``repro fuzz``.
"""

from .corpus import CorpusEntry, load_corpus, replay_corpus, save_reproducer
from .differential import (
    ENGINE_LEVELS,
    ENGINE_SET,
    FUZZ_CONFIG,
    PASS_REGISTRY,
    REFERENCE,
    DifferentialReport,
    Divergence,
    EngineDivergence,
    EngineObservation,
    EngineReport,
    Outcome,
    Variant,
    compare_engines,
    compile_module,
    default_variants,
    execute_engine,
    execute_variant,
    module_diverges,
    module_engine_diverges,
    run_differential,
)
from .fuzz import FuzzFinding, FuzzReport, run_fuzz
from .generator import GeneratedProgram, generate, generate_batch
from .minimize import minimize
from .render import render_module

__all__ = [
    "CorpusEntry",
    "DifferentialReport",
    "Divergence",
    "ENGINE_LEVELS",
    "ENGINE_SET",
    "EngineDivergence",
    "EngineObservation",
    "EngineReport",
    "FUZZ_CONFIG",
    "FuzzFinding",
    "FuzzReport",
    "GeneratedProgram",
    "Outcome",
    "PASS_REGISTRY",
    "REFERENCE",
    "Variant",
    "compare_engines",
    "compile_module",
    "default_variants",
    "execute_engine",
    "execute_variant",
    "generate",
    "generate_batch",
    "load_corpus",
    "minimize",
    "module_diverges",
    "module_engine_diverges",
    "render_module",
    "replay_corpus",
    "run_differential",
    "run_fuzz",
    "save_reproducer",
]
