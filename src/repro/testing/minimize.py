"""Delta-debugging minimizer: shrink a diverging program to its essence.

Given a module whose differential run diverges, greedily applies the
first semantics-shrinking edit that preserves the divergence, restarting
until no edit helps (or the check budget runs out). Edits, coarse to
fine:

1. drop a whole function (``main`` always stays — it is the entry);
2. delete a chunk of statements from any block (ddmin-style: whole
   block first, then halves, then single statements);
3. hoist a control-flow statement's body over the statement itself
   (``if`` → its branch, loops → their body);
4. reduce an expression to ``0``/``1`` or to one of its own
   subexpressions.

Candidate edits routinely produce invalid programs (deleting a
declaration whose uses survive, hoisting a loop body that reads the loop
variable); the interestingness predicate compiles each candidate and
simply rejects the invalid ones, so the minimizer needs no scope
analysis of its own. The result is always a well-formed module that
still satisfies the predicate.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator

from ..lang import ast

#: A path from the module root to a node: ``(field_name, tuple_index)``
#: steps, with ``None`` for scalar fields.
Path = tuple[tuple[str, int | None], ...]


def _children(node: ast.Node) -> Iterator[tuple[tuple[str, int | None], ast.Node]]:
    for f in dataclasses.fields(node):
        if f.name in ("line", "col"):
            continue
        value = getattr(node, f.name)
        if isinstance(value, ast.Node):
            yield (f.name, None), value
        elif isinstance(value, tuple):
            for index, item in enumerate(value):
                if isinstance(item, ast.Node):
                    yield (f.name, index), item


def _walk(node: ast.Node, path: Path = ()) -> Iterator[tuple[Path, ast.Node]]:
    yield path, node
    for step, child in _children(node):
        yield from _walk(child, path + (step,))


def _set(node: ast.Node, path: Path, replacement: ast.Node) -> ast.Node:
    if not path:
        return replacement
    (fname, index), rest = path[0], path[1:]
    value = getattr(node, fname)
    if index is None:
        return dataclasses.replace(node, **{fname: _set(value, rest, replacement)})
    items = list(value)
    items[index] = _set(items[index], rest, replacement)
    return dataclasses.replace(node, **{fname: tuple(items)})


def _candidates(module: ast.Module) -> Iterator[ast.Module]:
    """Yield reduced variants of *module*, coarsest reductions first."""
    functions = module.functions
    if len(functions) > 1:
        for i, fn in enumerate(functions):
            if fn.name == "main":
                continue
            yield dataclasses.replace(
                module, functions=functions[:i] + functions[i + 1 :]
            )

    nodes = list(_walk(module))

    for path, node in nodes:
        if isinstance(node, ast.Block) and node.statements and path:
            n = len(node.statements)
            size = n
            while size >= 1:
                for start in range(0, n, size):
                    kept = (
                        node.statements[:start] + node.statements[start + size :]
                    )
                    if len(kept) == n:
                        continue
                    yield _set(
                        module,
                        path,
                        dataclasses.replace(node, statements=kept),
                    )
                size //= 2

    for path, node in nodes:
        if isinstance(node, ast.If):
            yield _set(module, path, node.then_body)
            if node.else_body is not None:
                yield _set(module, path, node.else_body)
        elif isinstance(node, (ast.While, ast.For)):
            yield _set(module, path, node.body)

    for path, node in nodes:
        if isinstance(node, ast.Expr) and path:
            if not (isinstance(node, ast.IntLit) and node.value in (0, 1)):
                yield _set(module, path, ast.IntLit(value=1))
                yield _set(module, path, ast.IntLit(value=0))
            for _, child in _children(node):
                if isinstance(child, ast.Expr):
                    yield _set(module, path, child)


def minimize(
    module: ast.Module,
    is_interesting: Callable[[ast.Module], bool],
    max_checks: int = 1500,
) -> ast.Module:
    """Greedily shrink *module* while ``is_interesting`` stays true.

    *module* itself must satisfy the predicate. The predicate must return
    False (not raise) for candidates that fail to compile.
    """
    checks = 0
    improved = True
    while improved and checks < max_checks:
        improved = False
        for candidate in _candidates(module):
            checks += 1
            if is_interesting(candidate):
                module = candidate
                improved = True
                break
            if checks >= max_checks:
                break
    return module
