"""AST → MiniLang source rendering.

The fuzzing pipeline works on :mod:`repro.lang.ast` trees (the generator
emits them, the minimizer rewrites them), but reproducers are stored and
replayed as ordinary MiniLang source so a corpus entry is a plain,
human-readable program. Rendering goes through the full front end when
recompiled, so every corpus file is guaranteed to be valid MiniLang.

Expressions are emitted fully parenthesized: the renderer never needs to
reason about precedence, and the parser accepts redundant parentheses.
"""

from __future__ import annotations

from ..lang import ast

_INDENT = "  "


def render_expr(expr: ast.Expr) -> str:
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.FloatLit):
        return repr(expr.value)
    if isinstance(expr, ast.Name):
        return expr.ident
    if isinstance(expr, ast.Unary):
        return f"({expr.op}{render_expr(expr.operand)})"
    if isinstance(expr, ast.Binary):
        return f"({render_expr(expr.left)} {expr.op} {render_expr(expr.right)})"
    if isinstance(expr, ast.Call):
        args = ", ".join(render_expr(a) for a in expr.args)
        return f"{expr.callee}({args})"
    if isinstance(expr, ast.Index):
        return f"{render_expr(expr.array)}[{render_expr(expr.index)}]"
    raise TypeError(f"cannot render expression {type(expr).__name__}")


def _render_simple(stmt: ast.Stmt) -> str:
    """One of the semicolon-less statement forms (also used in for-headers)."""
    if isinstance(stmt, ast.VarDecl):
        return f"var {stmt.name} = {render_expr(stmt.init)}"
    if isinstance(stmt, ast.Assign):
        return f"{stmt.name} = {render_expr(stmt.value)}"
    if isinstance(stmt, ast.IndexAssign):
        return (
            f"{render_expr(stmt.array)}[{render_expr(stmt.index)}]"
            f" = {render_expr(stmt.value)}"
        )
    if isinstance(stmt, ast.ExprStmt):
        return render_expr(stmt.expr)
    raise TypeError(f"{type(stmt).__name__} is not a simple statement")


def render_stmt(stmt: ast.Stmt, depth: int = 1) -> list[str]:
    pad = _INDENT * depth
    if isinstance(stmt, (ast.VarDecl, ast.Assign, ast.IndexAssign, ast.ExprStmt)):
        return [f"{pad}{_render_simple(stmt)};"]
    if isinstance(stmt, ast.Return):
        if stmt.value is None:
            return [f"{pad}return;"]
        return [f"{pad}return {render_expr(stmt.value)};"]
    if isinstance(stmt, ast.Break):
        return [f"{pad}break;"]
    if isinstance(stmt, ast.Continue):
        return [f"{pad}continue;"]
    if isinstance(stmt, ast.Block):
        lines = [f"{pad}{{"]
        for inner in stmt.statements:
            lines.extend(render_stmt(inner, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ast.If):
        lines = [f"{pad}if ({render_expr(stmt.cond)}) {{"]
        for inner in stmt.then_body.statements:
            lines.extend(render_stmt(inner, depth + 1))
        if stmt.else_body is not None:
            lines.append(f"{pad}}} else {{")
            for inner in stmt.else_body.statements:
                lines.extend(render_stmt(inner, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ast.While):
        lines = [f"{pad}while ({render_expr(stmt.cond)}) {{"]
        for inner in stmt.body.statements:
            lines.extend(render_stmt(inner, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ast.For):
        init = _render_simple(stmt.init) if stmt.init is not None else ""
        cond = render_expr(stmt.cond) if stmt.cond is not None else ""
        step = _render_simple(stmt.step) if stmt.step is not None else ""
        lines = [f"{pad}for ({init}; {cond}; {step}) {{"]
        for inner in stmt.body.statements:
            lines.extend(render_stmt(inner, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    raise TypeError(f"cannot render statement {type(stmt).__name__}")


def render_function(fn: ast.Function) -> str:
    header = f"fn {fn.name}({', '.join(fn.params)}) {{"
    lines = [header]
    for stmt in fn.body.statements:
        lines.extend(render_stmt(stmt, 1))
    lines.append("}")
    return "\n".join(lines)


def render_module(module: ast.Module) -> str:
    """Render *module* as compilable MiniLang source text."""
    return "\n\n".join(render_function(fn) for fn in module.functions) + "\n"
