"""Command-line entry point: ``python -m repro <command>``.

Commands map one-to-one onto the experiment harness:

    python -m repro table1                 # Table I
    python -m repro figure8               # Figure 8 curves
    python -m repro figure9               # Figure 9 correlation
    python -m repro figure10              # Figure 10 boxplots
    python -m repro overhead              # §V-B.2
    python -m repro sensitivity           # §V-B.3
    python -m repro gc-study              # §VI extension (GC selection)
    python -m repro server-study          # §V extension (request-specific)
    python -m repro coldstart             # cross-program prior uplift (forge)
    python -m repro serve                 # multi-tenant fleet server (TCP)
    python -m repro serve --study         # fleet serving study (driving scenario)
    python -m repro bench                 # VM wall-clock benchmark suite
    python -m repro bench NAME [RUNS]     # one benchmark, 3 scenarios
    python -m repro sweep [NAME ...]      # parallel sweep w/ cache+telemetry
    python -m repro fuzz                  # differential fuzz the VM/JIT
    python -m repro chaos                 # fault-injection campaign
    python -m repro chaos --drift         # faults + non-stationary inputs
    python -m repro drift                 # non-stationary shift-type study
    python -m repro list                  # available benchmarks

Options: ``--seed N`` (default 0), ``--runs N`` (scaled-down protocol;
omit for the paper's full run counts), ``--jobs N`` (parallel engine;
``bench``, ``sweep``, ``table1``, ``fuzz``), ``--telemetry PATH`` (JSONL
run events), ``--cache-dir PATH`` / ``--no-cache`` (on-disk result
cache; ``sweep`` caches by default; ``--no-jit-cache`` additionally
disables the cross-run JIT artifact cache). ``fuzz`` adds
``--iterations N``, ``--time-budget SECONDS``, ``--corpus-dir PATH``
(write minimized reproducers there; exit status 1 when any divergence is
found), and ``--engines`` (cross-check the fast and closure-compiled
engines against the reference interpreter instead of the pass matrix).
Bare ``bench`` runs
the wall-clock VM benchmark suite — interpreter workloads, a sweep cell,
fuzz throughput, and the learning layer (training rows/s, fast-vs-
reference model-construction speedup with identical-tree checks, and
flattened predict-all latency) — and writes ``BENCH_vm.json``; it takes
``--quick``, ``--out PATH``, ``--baseline PATH``, and
``--max-regression FRACTION``. ``chaos [BENCH]`` runs seeded
fault-injection campaigns over the crash-safe persistence stack
(``--iterations N`` campaigns, ``--seed N``, ``--runs N`` VM runs per
reference; exit status 1 when any resilience invariant is violated);
with ``--drift`` the campaign additionally drives an abrupt-shift input
schedule and checks the hot-swap rollback pillar. ``drift [BENCH]``
runs the non-stationary study — temporal confidence/accuracy/speedup
curves per shift type (``--kinds gradual,abrupt,cyclic,adversarial``)
with ground-truth shift points, detector firings, recovery latency, and
post-drift accuracy. ``sweep --strict`` exits 1 when any sweep cell
failed instead of returning the surviving results.
``serve`` boots the long-lived multi-tenant fleet server on a JSON-lines
TCP socket (``--host``/``--port``, ``--registry-dir PATH`` crash-safe
model registry, ``--queue-bound N`` admission control, ``--refit-interval
N`` hot-swap cadence, ``--tenants N``); with ``--study`` it instead runs
the fleet serving study — ``--requests N`` concurrent mixed-tenant
requests checked bit-identical to serial replay, exit status 1 on any
serving invariant violation. See ``docs/experiments.md``,
``docs/performance.md``, ``docs/testing.md``, ``docs/robustness.md``,
and ``docs/serving.md``.
"""

from __future__ import annotations

import argparse
import sys


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Evolvable-VM reproduction: experiment harness entry point",
    )
    parser.add_argument(
        "command",
        choices=[
            "table1",
            "figure8",
            "figure9",
            "figure10",
            "overhead",
            "sensitivity",
            "gc-study",
            "server-study",
            "coldstart",
            "serve",
            "bench",
            "sweep",
            "fuzz",
            "chaos",
            "drift",
            "forge",
            "list",
        ],
    )
    parser.add_argument("args", nargs="*", help="command-specific arguments")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--runs",
        type=int,
        default=None,
        help="override runs per benchmark (default: paper protocol)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the parallel engine (default: 1, serial)",
    )
    parser.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="append per-run JSONL telemetry events to PATH",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="result-cache directory (default: .repro_cache for sweep)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=200,
        help="fuzz: programs to generate and differentially check; "
        "chaos: fault-plan iterations to run",
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fuzz: stop checking new programs after this much wall-clock",
    )
    parser.add_argument(
        "--corpus-dir",
        metavar="PATH",
        default=None,
        help="fuzz: write minimized reproducers (.ml + .json) to PATH",
    )
    parser.add_argument(
        "--engines",
        action="store_true",
        help="fuzz: compare the fast and closure-compiled engines "
        "against the reference interpreter (clocks, samples, compile "
        "events) instead of the pass matrix",
    )
    parser.add_argument(
        "--no-jit-cache",
        action="store_true",
        help="sweep: disable the cross-run JIT artifact cache",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="sweep: exit with status 1 when any cell failed (degraded "
        "sweeps otherwise return the surviving results with status 0)",
    )
    parser.add_argument(
        "--drift",
        action="store_true",
        help="chaos: layer a non-stationary (abrupt-shift) input schedule "
        "over the fault campaign and check the hot-swap rollback pillar",
    )
    parser.add_argument(
        "--kinds",
        metavar="KIND[,KIND...]",
        default=None,
        help="drift: comma-separated shift kinds to study "
        "(default: gradual,abrupt,cyclic,adversarial)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="bench: smaller workloads (CI smoke mode)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_vm.json",
        help="bench: where to write the JSON report (default BENCH_vm.json)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="bench: compare speedups against this recorded report; "
        "exit 1 on regression",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        metavar="FRACTION",
        help="bench: allowed fractional speedup regression vs the "
        "baseline (default 0.20)",
    )
    forge = parser.add_argument_group("forge")
    forge.add_argument(
        "--programs",
        type=int,
        default=500,
        help="forge: generated programs to label (default 500)",
    )
    forge.add_argument(
        "--inputs",
        type=int,
        default=8,
        help="forge: inputs labeled per program (default 8)",
    )
    forge.add_argument(
        "--shard-rows",
        type=int,
        default=50_000,
        help="forge: rows per on-disk shard (default 50000)",
    )
    forge.add_argument(
        "--forge-dir",
        metavar="PATH",
        default=".repro_forge",
        help="forge: shard/prior output directory (default .repro_forge)",
    )
    forge.add_argument(
        "--no-train",
        action="store_true",
        help="forge: produce shards only, skip training the prior",
    )
    forge.add_argument(
        "--check-naive",
        type=int,
        default=0,
        metavar="N",
        help="forge: differentially check forked labels against naive "
        "re-execution on the first N program×input pairs (exit 1 on "
        "any mismatch)",
    )
    serve = parser.add_argument_group("serve")
    serve.add_argument(
        "--study",
        action="store_true",
        help="serve: run the fleet serving study instead of the TCP server",
    )
    serve.add_argument(
        "--requests",
        type=int,
        default=1000,
        help="serve --study: mixed-tenant requests to drive (default 1000)",
    )
    serve.add_argument(
        "--tenants",
        type=int,
        default=4,
        help="serve: resident tenant applications (default 4)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="serve: TCP bind host"
    )
    serve.add_argument(
        "--port", type=int, default=7907, help="serve: TCP port (default 7907)"
    )
    serve.add_argument(
        "--registry-dir",
        metavar="PATH",
        default=".repro_registry",
        help="serve: crash-safe model registry directory "
        "(default .repro_registry)",
    )
    serve.add_argument(
        "--queue-bound",
        type=int,
        default=128,
        help="serve: per-tenant admission-control queue bound (default 128)",
    )
    serve.add_argument(
        "--refit-interval",
        type=int,
        default=25,
        help="serve: runs between hot model swaps per tenant (default 25)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="serve: worker processes, each owning a hash-partition of "
        "the tenants (default 1 = single-process); with --study also "
        "runs the sharded bit-identity study incl. kill/respawn",
    )
    return parser


def _make_telemetry(options):
    if options.telemetry is None:
        return None
    from .experiments.telemetry import TelemetryLog

    return TelemetryLog(options.telemetry)


def _make_cache(options, default_on: bool):
    if options.no_cache:
        return None
    if options.cache_dir is None and not default_on:
        return None
    from .experiments.telemetry import DEFAULT_CACHE_DIR, ResultCache

    return ResultCache(options.cache_dir or DEFAULT_CACHE_DIR)


def main(argv: list[str] | None = None) -> int:
    options = _build_parser().parse_args(argv)
    command = options.command

    if command == "list":
        from .bench import all_benchmarks

        for bench in all_benchmarks():
            marker = "*" if bench.input_sensitive else " "
            print(
                f"{bench.name:<12} {bench.suite:<7} {marker} "
                f"{bench.n_inputs:>3} inputs, {bench.runs} runs, "
                f"{len(bench.program)} methods"
            )
        return 0

    if command == "bench":
        if not options.args:
            # Bare `repro bench`: the VM wall-clock benchmark suite.
            import json

            from .bench.vmbench import (
                bench_report,
                compare_to_baseline,
                format_report,
                write_report,
            )

            report = bench_report(quick=options.quick)
            write_report(report, options.out)
            print(format_report(report))
            print(f"report -> {options.out}")
            if options.baseline is not None:
                with open(options.baseline, "r", encoding="utf-8") as fh:
                    baseline = json.load(fh)
                failures = compare_to_baseline(
                    report, baseline, max_regression=options.max_regression
                )
                for failure in failures:
                    print(f"REGRESSION: {failure}", file=sys.stderr)
                if failures:
                    return 1
                print(
                    f"within {options.max_regression:.0%} of baseline "
                    f"{options.baseline}"
                )
            return 0
        from .bench import get_benchmark
        from .experiments import run_experiment
        from .experiments.report import format_table

        name = options.args[0]
        runs = int(options.args[1]) if len(options.args) > 1 else options.runs
        result = run_experiment(
            get_benchmark(name), seed=options.seed, runs=runs, jobs=options.jobs
        )
        rows = []
        for i, (d, r, e) in enumerate(
            zip(result.default, result.rep, result.evolve)
        ):
            rows.append(
                [
                    i + 1,
                    f"{d.profile.total_cycles / 1e6:.2f}",
                    f"{d.total_cycles / r.total_cycles:.3f}",
                    f"{d.total_cycles / e.total_cycles:.3f}",
                    "yes" if e.applied_prediction else "no",
                ]
            )
        print(
            format_table(
                ["run", "default (s)", "rep", "evolve", "applied"], rows
            )
        )
        return 0

    if command == "sweep":
        from .bench import all_benchmarks, get_benchmark
        from .experiments.parallel import run_sweep
        from .experiments.report import format_sweep

        benchmarks = (
            [get_benchmark(name) for name in options.args]
            if options.args
            else list(all_benchmarks())
        )
        telemetry = _make_telemetry(options)
        cache = _make_cache(options, default_on=True)
        # The JIT artifact cache lives next to the result cache; workers
        # share it across cells and sweep invocations. Disable with
        # --no-jit-cache (or --no-cache, which turns off all disk caching).
        jit_cache_dir = None
        if not options.no_jit_cache and not options.no_cache:
            import os

            from .experiments.telemetry import DEFAULT_CACHE_DIR

            jit_cache_dir = os.path.join(
                options.cache_dir or DEFAULT_CACHE_DIR, "jit"
            )
        report = run_sweep(
            benchmarks,
            jobs=options.jobs,
            seed=options.seed,
            runs=options.runs,
            telemetry=telemetry,
            cache=cache,
            jit_cache_dir=jit_cache_dir,
        )
        print(format_sweep(report.results))
        print(report.describe())
        for failure in report.failures:
            print(f"  failed cell: {failure.describe()}", file=sys.stderr)
        if cache is not None:
            print(f"cache: {cache.stats.describe()}")
        if telemetry is not None:
            telemetry.close()
            print(
                f"telemetry: {telemetry.events_written} event(s) "
                f"-> {telemetry.path}"
            )
        if options.strict and report.cells_failed:
            print(
                f"sweep --strict: {report.cells_failed} cell(s) failed",
                file=sys.stderr,
            )
            return 1
        return 0

    if command == "fuzz":
        from .testing import run_fuzz

        report = run_fuzz(
            seed=options.seed,
            iterations=options.iterations,
            time_budget=options.time_budget,
            jobs=options.jobs,
            corpus_dir=options.corpus_dir,
            engine_check=options.engines,
        )
        print(f"fuzz seed={report.seed}: {report.describe()}")
        for finding in report.findings:
            print(f"  divergence: {finding.describe()}")
            if finding.reproducer is not None:
                print(f"    reproducer: {finding.reproducer}")
        return 0 if report.ok else 1

    if command == "chaos":
        from .resilience.chaos import run_chaos

        report = run_chaos(
            seed=options.seed,
            iterations=options.iterations,
            benchmark=options.args[0] if options.args else "Search",
            runs=options.runs or 3,
            drift=options.drift,
        )
        mode = " (drifted input schedule)" if report.drift else ""
        print(f"chaos seed={report.seed}{mode}: {report.describe()}")
        for violation in report.violations:
            print(f"  violation: {violation.describe()}", file=sys.stderr)
        if report.ok:
            print("all resilience invariants held")
        return 0 if report.ok else 1

    if command == "drift":
        from .experiments import drift_study

        kinds = (
            tuple(k.strip() for k in options.kinds.split(",") if k.strip())
            if options.kinds
            else None
        )
        drift_study.main(
            program=options.args[0] if options.args else None,
            seed=options.seed,
            runs=options.runs,
            jobs=options.jobs,
            kinds=kinds,
        )
        return 0

    if command == "forge":
        return _cmd_forge(options)

    if command == "table1":
        from .experiments import table1

        table1.main(
            seed=options.seed, runs_override=options.runs, jobs=options.jobs
        )
    elif command == "figure8":
        from .experiments import figure8

        figure8.main(seed=options.seed, runs=options.runs)
    elif command == "figure9":
        from .experiments import figure9

        figure9.main(seed=options.seed, runs=options.runs)
    elif command == "figure10":
        from .experiments import figure10

        figure10.main(seed=options.seed, runs_override=options.runs)
    elif command == "overhead":
        from .experiments import overhead

        overhead.main(seed=options.seed, runs_override=options.runs)
    elif command == "sensitivity":
        from .experiments import sensitivity

        sensitivity.main(seed=options.seed, runs=options.runs)
    elif command == "gc-study":
        from .experiments import gc_study

        gc_study.main(seed=options.seed, runs=options.runs or 40)
    elif command == "server-study":
        from .experiments import server_study

        server_study.main(seed=options.seed, requests=options.runs or 120)
    elif command == "coldstart":
        from .experiments import coldstart

        coldstart.main(
            seed=options.seed,
            programs=options.runs,
            jobs=options.jobs,
            cache_dir=options.cache_dir,
        )
    elif command == "serve":
        return _cmd_serve(options)
    return 0


def _cmd_forge(options) -> int:
    import json

    from .learning.forge import run_forge

    if options.check_naive > 0:
        from .learning.forge import label_forked, label_naive, labels_equal
        from .learning.forge.pipeline import input_args
        from .testing.differential import compile_module
        from .testing.generator import generate
        from .vm.opt.jit import JITCompiler
        from .learning.forge.labeler import FORGE_CONFIG

        mismatches = 0
        checked = 0
        index = 0
        while checked < options.check_naive:
            gp = generate(options.seed, index)
            program = compile_module(gp.module)
            jit = JITCompiler(program, FORGE_CONFIG)
            plan_cache: dict = {}
            for k in range(options.inputs):
                if checked >= options.check_naive:
                    break
                args = input_args(options.seed, index, k, gp.args)
                forked = label_forked(
                    program, args, jit=jit, plan_cache=plan_cache
                )
                naive = label_naive(program, args)
                checked += 1
                if not labels_equal(naive, forked):
                    mismatches += 1
                    print(
                        f"MISMATCH: seed={options.seed} index={index} "
                        f"args={args}",
                        file=sys.stderr,
                    )
            index += 1
        print(f"forge check: {checked} pair(s), {mismatches} mismatch(es)")
        if mismatches:
            return 1

    stats, prior = run_forge(
        options.forge_dir,
        programs=options.programs,
        inputs_per_program=options.inputs,
        seed=options.seed,
        jobs=options.jobs,
        shard_rows=options.shard_rows,
        train=not options.no_train,
    )
    print(json.dumps(stats.as_dict(), indent=2))
    if prior is not None:
        print(
            f"prior: {len(prior.clusters)} cluster(s) trained on "
            f"{prior.rows_trained} row(s) -> {options.forge_dir}/prior.bin"
        )
    print(
        f"forge: {stats.rows} row(s) in {stats.shards} shard(s) "
        f"-> {options.forge_dir}"
    )
    return 0


def _cmd_serve(options) -> int:
    if options.study:
        from .experiments import server_study

        return server_study.fleet_main(
            seed=options.seed,
            requests=options.requests,
            tenants=options.tenants,
            shards=options.shards,
        )
    if options.shards > 1:
        return _cmd_serve_sharded(options)

    import asyncio

    from .experiments.server_study import build_tenant_apps
    from .serving import FleetServer, ModelRegistry, build_fleet, serve_tcp

    registry = ModelRegistry(options.registry_dir)
    tenants = build_fleet(
        build_tenant_apps(options.tenants),
        registry=registry,
        refit_interval=options.refit_interval,
    )
    telemetry = _make_telemetry(options)
    server = FleetServer(
        tenants,
        registry,
        queue_bound=options.queue_bound,
        telemetry=telemetry,
    )

    async def _run() -> int:
        await server.start()
        server.surface_startup()
        tcp = await serve_tcp(server, options.host, options.port)
        print(
            f"repro serve: {len(tenants)} tenant(s) on "
            f"{options.host}:{options.port} "
            f"(registry {options.registry_dir!r}); Ctrl-C to stop"
        )
        try:
            async with tcp:
                await tcp.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover - shutdown path
            pass
        finally:
            await server.stop()
        return 0

    try:
        return asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        print("repro serve: interrupted, models persisted")
        return 0
    finally:
        if telemetry is not None:
            telemetry.close()


def _cmd_serve_sharded(options) -> int:
    """The multi-process fleet: N forked workers behind the shard router,
    exposed on the same public JSONL TCP surface as single-process
    serve."""
    import asyncio

    from .experiments.server_study import build_tenant_apps
    from .serving import ShardRouter
    from .serving.server import serve_tcp

    telemetry = _make_telemetry(options)
    router = ShardRouter(
        build_tenant_apps,
        (options.tenants,),
        shards=options.shards,
        registry_dir=options.registry_dir,
        refit_interval=options.refit_interval,
        queue_bound=options.queue_bound,
        telemetry=telemetry,
        telemetry_path=options.telemetry,
        host=options.host,
    )

    async def _run() -> int:
        await router.start()
        tcp = await serve_tcp(router, options.host, options.port)
        print(
            f"repro serve: {len(router._tenant_names)} tenant(s) across "
            f"{options.shards} shard worker(s) on "
            f"{options.host}:{options.port} "
            f"(registry {options.registry_dir!r}); Ctrl-C to stop"
        )
        try:
            async with tcp:
                await tcp.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover - shutdown path
            pass
        finally:
            await router.stop()
        return 0

    try:
        return asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        print("repro serve: interrupted, shard models persisted")
        return 0
    finally:
        if telemetry is not None:
            telemetry.close()


if __name__ == "__main__":
    raise SystemExit(main())
