"""MiniLang code generation: AST → VM bytecode.

Each function compiles to one :class:`~repro.vm.program.Method`. Local
variables get dedicated slots (params first, then declarations in lexical
order; shadowing allocates fresh slots). Short-circuit ``&&``/``||`` compile
to branch sequences producing canonical 0/1 values. A trailing implicit
``return 0`` covers functions whose control flow reaches the end.
"""

from __future__ import annotations

from ..vm.program import Method, MethodBuilder
from . import ast
from .analysis import BUILTIN_ARITY
from .errors import SemanticError


class _FunctionCodegen:
    def __init__(self, fn: ast.Function, signatures: dict[str, int]):
        self.fn = fn
        self.signatures = signatures
        self.builder = MethodBuilder(fn.name, num_params=len(fn.params))
        self.scopes: list[dict[str, int]] = [
            {name: slot for slot, name in enumerate(fn.params)}
        ]
        self.next_slot = len(fn.params)
        self._label_counter = 0
        # (break_label, continue_label) stack for nested loops.
        self.loop_labels: list[tuple[str, str]] = []

    # -- helpers -------------------------------------------------------------
    def _fresh_label(self, hint: str) -> str:
        self._label_counter += 1
        return f"__{hint}_{self._label_counter}"

    def _declare(self, name: str) -> int:
        slot = self.next_slot
        self.next_slot += 1
        self.scopes[-1][name] = slot
        return slot

    def _lookup(self, name: str) -> int:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise SemanticError(f"undefined variable {name!r}")  # pragma: no cover

    # -- entry -------------------------------------------------------------
    def generate(self) -> Method:
        self._gen_block(self.fn.body, new_scope=False)
        # Implicit `return 0` if control reaches the end.
        self.builder.const(0).ret()
        return self.builder.build(num_locals=self.next_slot)

    # -- statements ------------------------------------------------------------
    def _gen_block(self, block: ast.Block, new_scope: bool = True) -> None:
        if new_scope:
            self.scopes.append({})
        for stmt in block.statements:
            self._gen_stmt(stmt)
        if new_scope:
            self.scopes.pop()

    def _gen_stmt(self, stmt: ast.Stmt) -> None:
        b = self.builder
        if isinstance(stmt, ast.VarDecl):
            self._gen_expr(stmt.init)
            b.store(self._declare(stmt.name))
        elif isinstance(stmt, ast.Assign):
            self._gen_expr(stmt.value)
            b.store(self._lookup(stmt.name))
        elif isinstance(stmt, ast.IndexAssign):
            self._gen_expr(stmt.array)
            self._gen_expr(stmt.index)
            self._gen_expr(stmt.value)
            b.astore()
        elif isinstance(stmt, ast.ExprStmt):
            self._gen_expr(stmt.expr)
            b.pop()
        elif isinstance(stmt, ast.Block):
            self._gen_block(stmt)
        elif isinstance(stmt, ast.If):
            self._gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self._gen_while(stmt)
        elif isinstance(stmt, ast.For):
            self._gen_for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                b.const(0)
            else:
                self._gen_expr(stmt.value)
            b.ret()
        elif isinstance(stmt, ast.Break):
            b.jmp(self.loop_labels[-1][0])
        elif isinstance(stmt, ast.Continue):
            b.jmp(self.loop_labels[-1][1])
        else:  # pragma: no cover
            raise SemanticError(f"cannot generate {type(stmt).__name__}")

    def _gen_if(self, stmt: ast.If) -> None:
        b = self.builder
        else_label = self._fresh_label("else")
        end_label = self._fresh_label("endif")
        self._gen_expr(stmt.cond)
        b.jz(else_label if stmt.else_body is not None else end_label)
        self._gen_block(stmt.then_body)
        if stmt.else_body is not None:
            b.jmp(end_label)
            b.label(else_label)
            self._gen_block(stmt.else_body)
        b.label(end_label)

    def _gen_while(self, stmt: ast.While) -> None:
        b = self.builder
        cond_label = self._fresh_label("while_cond")
        end_label = self._fresh_label("while_end")
        b.label(cond_label)
        self._gen_expr(stmt.cond)
        b.jz(end_label)
        self.loop_labels.append((end_label, cond_label))
        self._gen_block(stmt.body)
        self.loop_labels.pop()
        b.jmp(cond_label)
        b.label(end_label)

    def _gen_for(self, stmt: ast.For) -> None:
        b = self.builder
        cond_label = self._fresh_label("for_cond")
        step_label = self._fresh_label("for_step")
        end_label = self._fresh_label("for_end")
        self.scopes.append({})
        if stmt.init is not None:
            self._gen_stmt(stmt.init)
        b.label(cond_label)
        if stmt.cond is not None:
            self._gen_expr(stmt.cond)
            b.jz(end_label)
        self.loop_labels.append((end_label, step_label))
        self._gen_block(stmt.body)
        self.loop_labels.pop()
        b.label(step_label)
        if stmt.step is not None:
            self._gen_stmt(stmt.step)
        b.jmp(cond_label)
        b.label(end_label)
        self.scopes.pop()

    # -- expressions ---------------------------------------------------------
    _BINOP_EMIT = {
        "+": "add",
        "-": "sub",
        "*": "mul",
        "/": "div",
        "%": "mod",
        "==": "eq",
        "!=": "ne",
        "<": "lt",
        "<=": "le",
        ">": "gt",
        ">=": "ge",
    }

    def _gen_expr(self, expr: ast.Expr) -> None:
        b = self.builder
        if isinstance(expr, (ast.IntLit, ast.FloatLit)):
            b.const(expr.value)
        elif isinstance(expr, ast.Name):
            b.load(self._lookup(expr.ident))
        elif isinstance(expr, ast.Unary):
            self._gen_expr(expr.operand)
            if expr.op == "-":
                b.neg()
            else:
                b.not_()
        elif isinstance(expr, ast.Binary):
            if expr.op in ("&&", "||"):
                self._gen_shortcircuit(expr)
            else:
                self._gen_expr(expr.left)
                self._gen_expr(expr.right)
                getattr(b, self._BINOP_EMIT[expr.op])()
        elif isinstance(expr, ast.Index):
            self._gen_expr(expr.array)
            self._gen_expr(expr.index)
            b.aload()
        elif isinstance(expr, ast.Call):
            self._gen_call(expr)
        else:  # pragma: no cover
            raise SemanticError(f"cannot generate {type(expr).__name__}")

    def _gen_shortcircuit(self, expr: ast.Binary) -> None:
        b = self.builder
        end_label = self._fresh_label("sc_end")
        if expr.op == "&&":
            short_label = self._fresh_label("sc_false")
            self._gen_expr(expr.left)
            b.jz(short_label)
            self._gen_expr(expr.right)
            b.jz(short_label)
            b.const(1).jmp(end_label)
            b.label(short_label).const(0)
        else:  # "||"
            short_label = self._fresh_label("sc_true")
            self._gen_expr(expr.left)
            b.jnz(short_label)
            self._gen_expr(expr.right)
            b.jnz(short_label)
            b.const(0).jmp(end_label)
            b.label(short_label).const(1)
        b.label(end_label)

    def _gen_call(self, expr: ast.Call) -> None:
        b = self.builder
        name = expr.callee
        for arg in expr.args:
            self._gen_expr(arg)
        if name in self.signatures:
            b.call(name, len(expr.args))
        elif name == "array":
            b.newarr()
        elif name == "len":
            b.alen()
        elif name in BUILTIN_ARITY:
            b.intrin(name, len(expr.args))
        else:  # pragma: no cover - analysis rejects unknown callees
            raise SemanticError(f"unknown function {name!r}")


def generate_module(module: ast.Module, signatures: dict[str, int]) -> list[Method]:
    """Generate methods for every function in *module*."""
    return [_FunctionCodegen(fn, signatures).generate() for fn in module.functions]
