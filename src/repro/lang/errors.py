"""Front-end error types, all carrying source positions."""

from __future__ import annotations


class LangError(Exception):
    """Base class for MiniLang front-end errors."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        self.line = line
        self.col = col
        super().__init__(f"{message} (line {line}, col {col})" if line else message)


class LexError(LangError):
    """Malformed input at the character level."""


class ParseError(LangError):
    """Token stream does not match the grammar."""


class SemanticError(LangError):
    """Program is grammatical but ill-formed (undefined names, arity...)."""
