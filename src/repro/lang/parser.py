"""MiniLang recursive-descent parser with precedence-climbing expressions.

Grammar (EBNF) ::

    module     := function*
    function   := 'fn' IDENT '(' params? ')' block
    params     := IDENT (',' IDENT)*
    block      := '{' statement* '}'
    statement  := var_decl | if | while | for | return | break ';'
                | continue ';' | assign_or_expr
    var_decl   := 'var' IDENT '=' expr ';'
    if         := 'if' '(' expr ')' block ('else' (block | if))?
    while      := 'while' '(' expr ')' block
    for        := 'for' '(' simple? ';' expr? ';' simple? ')' block
    return     := 'return' expr? ';'
    simple     := var_decl_nosemi | assignment_nosemi | expr
    assign_or_expr := lvalue '=' expr ';' | expr ';'
    expr       := or
    or         := and ('||' and)*
    and        := equality ('&&' equality)*
    equality   := relational (('=='|'!=') relational)*
    relational := additive (('<'|'<='|'>'|'>=') additive)*
    additive   := term (('+'|'-') term)*
    term       := unary (('*'|'/'|'%') unary)*
    unary      := ('-'|'!') unary | postfix
    postfix    := primary ('[' expr ']')*
    primary    := INT | FLOAT | IDENT | IDENT '(' args? ')' | '(' expr ')'
"""

from __future__ import annotations

from . import ast
from .errors import ParseError
from .lexer import tokenize
from .tokens import Token, TokenKind as K


class Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ----------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind != K.EOF:
            self._pos += 1
        return tok

    def _check(self, kind: K) -> bool:
        return self._peek().kind == kind

    def _match(self, kind: K) -> Token | None:
        if self._check(kind):
            return self._advance()
        return None

    def _expect(self, kind: K, what: str = "") -> Token:
        tok = self._peek()
        if tok.kind != kind:
            wanted = what or kind.value
            raise ParseError(
                f"expected {wanted!r}, found {tok.text or tok.kind.value!r}",
                tok.line,
                tok.col,
            )
        return self._advance()

    # -- top level ----------------------------------------------------------
    def parse_module(self) -> ast.Module:
        functions: list[ast.Function] = []
        while not self._check(K.EOF):
            functions.append(self._function())
        eof = self._peek()
        return ast.Module(functions=tuple(functions), line=eof.line, col=eof.col)

    def _function(self) -> ast.Function:
        fn_tok = self._expect(K.FN, "fn")
        name = self._expect(K.IDENT, "function name")
        self._expect(K.LPAREN)
        params: list[str] = []
        if not self._check(K.RPAREN):
            params.append(self._expect(K.IDENT, "parameter").text)
            while self._match(K.COMMA):
                params.append(self._expect(K.IDENT, "parameter").text)
        self._expect(K.RPAREN)
        body = self._block()
        return ast.Function(
            name=name.text,
            params=tuple(params),
            body=body,
            line=fn_tok.line,
            col=fn_tok.col,
        )

    # -- statements ----------------------------------------------------------
    def _block(self) -> ast.Block:
        lbrace = self._expect(K.LBRACE)
        statements: list[ast.Stmt] = []
        while not self._check(K.RBRACE):
            if self._check(K.EOF):
                raise ParseError("unterminated block", lbrace.line, lbrace.col)
            statements.append(self._statement())
        self._expect(K.RBRACE)
        return ast.Block(statements=tuple(statements), line=lbrace.line, col=lbrace.col)

    def _statement(self) -> ast.Stmt:
        tok = self._peek()
        if tok.kind == K.VAR:
            stmt = self._var_decl()
            self._expect(K.SEMI)
            return stmt
        if tok.kind == K.LBRACE:
            # Bare block: a statement list in its own scope.
            return self._block()
        if tok.kind == K.IF:
            return self._if()
        if tok.kind == K.WHILE:
            return self._while()
        if tok.kind == K.FOR:
            return self._for()
        if tok.kind == K.RETURN:
            self._advance()
            value = None
            if not self._check(K.SEMI):
                value = self._expr()
            self._expect(K.SEMI)
            return ast.Return(value=value, line=tok.line, col=tok.col)
        if tok.kind == K.BREAK:
            self._advance()
            self._expect(K.SEMI)
            return ast.Break(line=tok.line, col=tok.col)
        if tok.kind == K.CONTINUE:
            self._advance()
            self._expect(K.SEMI)
            return ast.Continue(line=tok.line, col=tok.col)
        stmt = self._simple_statement()
        self._expect(K.SEMI)
        return stmt

    def _var_decl(self) -> ast.VarDecl:
        tok = self._expect(K.VAR)
        name = self._expect(K.IDENT, "variable name")
        self._expect(K.ASSIGN)
        init = self._expr()
        return ast.VarDecl(name=name.text, init=init, line=tok.line, col=tok.col)

    def _simple_statement(self) -> ast.Stmt:
        """Assignment, index assignment, or expression statement (no semi)."""
        tok = self._peek()
        if tok.kind == K.VAR:
            return self._var_decl()
        # IDENT '=' → scalar assignment
        if tok.kind == K.IDENT and self._peek(1).kind == K.ASSIGN:
            name = self._advance()
            self._advance()  # '='
            value = self._expr()
            return ast.Assign(name=name.text, value=value, line=tok.line, col=tok.col)
        expr = self._expr()
        # postfix index followed by '=' → element assignment
        if isinstance(expr, ast.Index) and self._check(K.ASSIGN):
            self._advance()
            value = self._expr()
            return ast.IndexAssign(
                array=expr.array,
                index=expr.index,
                value=value,
                line=tok.line,
                col=tok.col,
            )
        return ast.ExprStmt(expr=expr, line=tok.line, col=tok.col)

    def _if(self) -> ast.If:
        tok = self._expect(K.IF)
        self._expect(K.LPAREN)
        cond = self._expr()
        self._expect(K.RPAREN)
        then_body = self._block()
        else_body: ast.Block | None = None
        if self._match(K.ELSE):
            if self._check(K.IF):
                nested = self._if()
                else_body = ast.Block(
                    statements=(nested,), line=nested.line, col=nested.col
                )
            else:
                else_body = self._block()
        return ast.If(
            cond=cond,
            then_body=then_body,
            else_body=else_body,
            line=tok.line,
            col=tok.col,
        )

    def _while(self) -> ast.While:
        tok = self._expect(K.WHILE)
        self._expect(K.LPAREN)
        cond = self._expr()
        self._expect(K.RPAREN)
        body = self._block()
        return ast.While(cond=cond, body=body, line=tok.line, col=tok.col)

    def _for(self) -> ast.For:
        tok = self._expect(K.FOR)
        self._expect(K.LPAREN)
        init = None if self._check(K.SEMI) else self._simple_statement()
        self._expect(K.SEMI)
        cond = None if self._check(K.SEMI) else self._expr()
        self._expect(K.SEMI)
        step = None if self._check(K.RPAREN) else self._simple_statement()
        self._expect(K.RPAREN)
        body = self._block()
        return ast.For(
            init=init, cond=cond, step=step, body=body, line=tok.line, col=tok.col
        )

    # -- expressions ----------------------------------------------------------
    def _expr(self) -> ast.Expr:
        return self._or()

    def _binary_level(self, sub, kinds: dict[K, str]) -> ast.Expr:
        left = sub()
        while self._peek().kind in kinds:
            op_tok = self._advance()
            right = sub()
            left = ast.Binary(
                op=kinds[op_tok.kind],
                left=left,
                right=right,
                line=op_tok.line,
                col=op_tok.col,
            )
        return left

    def _or(self) -> ast.Expr:
        return self._binary_level(self._and, {K.OR: "||"})

    def _and(self) -> ast.Expr:
        return self._binary_level(self._equality, {K.AND: "&&"})

    def _equality(self) -> ast.Expr:
        return self._binary_level(self._relational, {K.EQ: "==", K.NE: "!="})

    def _relational(self) -> ast.Expr:
        return self._binary_level(
            self._additive, {K.LT: "<", K.LE: "<=", K.GT: ">", K.GE: ">="}
        )

    def _additive(self) -> ast.Expr:
        return self._binary_level(self._term, {K.PLUS: "+", K.MINUS: "-"})

    def _term(self) -> ast.Expr:
        return self._binary_level(
            self._unary, {K.STAR: "*", K.SLASH: "/", K.PERCENT: "%"}
        )

    def _unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind in (K.MINUS, K.BANG):
            self._advance()
            operand = self._unary()
            return ast.Unary(
                op="-" if tok.kind == K.MINUS else "!",
                operand=operand,
                line=tok.line,
                col=tok.col,
            )
        return self._postfix()

    def _postfix(self) -> ast.Expr:
        expr = self._primary()
        while self._check(K.LBRACKET):
            tok = self._advance()
            index = self._expr()
            self._expect(K.RBRACKET)
            expr = ast.Index(array=expr, index=index, line=tok.line, col=tok.col)
        return expr

    def _primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == K.INT:
            self._advance()
            return ast.IntLit(value=tok.value, line=tok.line, col=tok.col)
        if tok.kind == K.FLOAT:
            self._advance()
            return ast.FloatLit(value=tok.value, line=tok.line, col=tok.col)
        if tok.kind == K.IDENT:
            self._advance()
            if self._check(K.LPAREN):
                self._advance()
                args: list[ast.Expr] = []
                if not self._check(K.RPAREN):
                    args.append(self._expr())
                    while self._match(K.COMMA):
                        args.append(self._expr())
                self._expect(K.RPAREN)
                return ast.Call(
                    callee=tok.text, args=tuple(args), line=tok.line, col=tok.col
                )
            return ast.Name(ident=tok.text, line=tok.line, col=tok.col)
        if tok.kind == K.LPAREN:
            self._advance()
            expr = self._expr()
            self._expect(K.RPAREN)
            return expr
        raise ParseError(
            f"unexpected token {tok.text or tok.kind.value!r}", tok.line, tok.col
        )


def parse(source: str) -> ast.Module:
    """Parse MiniLang *source* into a :class:`~repro.lang.ast.Module`."""
    return Parser(tokenize(source)).parse_module()
