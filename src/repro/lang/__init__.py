"""MiniLang: a small imperative language compiled to the VM's bytecode.

The benchmark workloads (:mod:`repro.bench`) are written in MiniLang; the
language exists so the substrate executes *real programs* — with functions,
loops, arrays, and input-dependent control flow — rather than hand-tuned
instruction lists.

Public surface::

    from repro.lang import compile_source, parse, tokenize
"""

from .analysis import BUILTIN_ARITY, analyze
from .compiler import compile_source
from .errors import LangError, LexError, ParseError, SemanticError
from .lexer import tokenize
from .parser import parse
from .tokens import Token, TokenKind

__all__ = [
    "BUILTIN_ARITY",
    "LangError",
    "LexError",
    "ParseError",
    "SemanticError",
    "Token",
    "TokenKind",
    "analyze",
    "compile_source",
    "parse",
    "tokenize",
]
