"""Semantic analysis for MiniLang.

Checks performed before code generation:

- duplicate function definitions; functions shadowing builtins;
- undefined variables; duplicate declarations within one scope;
- assignment to undeclared names;
- calls to unknown functions; arity mismatches (user functions, builtins,
  and the ``array``/``len`` special forms);
- ``break``/``continue`` outside loops;
- a designated entry function exists.
"""

from __future__ import annotations

from . import ast
from .errors import SemanticError

#: Builtin (intrinsic) functions visible to MiniLang programs, with arities.
#: ``array`` and ``len`` are special forms compiled to dedicated opcodes.
BUILTIN_ARITY: dict[str, int] = {
    "burn": 1,
    "alloc": 1,
    "retain": 1,
    "release": 1,
    "print": 1,
    "abs": 1,
    "min": 2,
    "max": 2,
    "sqrt": 1,
    "floor": 1,
    "exp": 1,
    "log": 1,
    "sin": 1,
    "cos": 1,
    "rand": 0,
    "randint": 2,
    "itof": 1,
    "ftoi": 1,
    "array": 1,
    "len": 1,
}


class _FunctionChecker:
    def __init__(self, signatures: dict[str, int], fn: ast.Function):
        self.signatures = signatures
        self.fn = fn
        self.scopes: list[set[str]] = [set(fn.params)]
        self.loop_depth = 0
        if len(set(fn.params)) != len(fn.params):
            raise SemanticError(
                f"duplicate parameter in {fn.name!r}", fn.line, fn.col
            )

    def _declared(self, name: str) -> bool:
        return any(name in scope for scope in self.scopes)

    def check(self) -> None:
        self._block(self.fn.body, new_scope=False)

    def _block(self, block: ast.Block, new_scope: bool = True) -> None:
        if new_scope:
            self.scopes.append(set())
        for stmt in block.statements:
            self._stmt(stmt)
        if new_scope:
            self.scopes.pop()

    def _stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            self._expr(stmt.init)
            if stmt.name in self.scopes[-1]:
                raise SemanticError(
                    f"duplicate declaration of {stmt.name!r}", stmt.line, stmt.col
                )
            self.scopes[-1].add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            if not self._declared(stmt.name):
                raise SemanticError(
                    f"assignment to undeclared variable {stmt.name!r}",
                    stmt.line,
                    stmt.col,
                )
            self._expr(stmt.value)
        elif isinstance(stmt, ast.IndexAssign):
            self._expr(stmt.array)
            self._expr(stmt.index)
            self._expr(stmt.value)
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr)
        elif isinstance(stmt, ast.Block):
            self._block(stmt)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.cond)
            self._block(stmt.then_body)
            if stmt.else_body is not None:
                self._block(stmt.else_body)
        elif isinstance(stmt, ast.While):
            self._expr(stmt.cond)
            self.loop_depth += 1
            self._block(stmt.body)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.For):
            # for-scope: the init declaration is visible in cond/step/body.
            self.scopes.append(set())
            if stmt.init is not None:
                self._stmt(stmt.init)
            if stmt.cond is not None:
                self._expr(stmt.cond)
            if stmt.step is not None:
                self._stmt(stmt.step)
            self.loop_depth += 1
            self._block(stmt.body)
            self.loop_depth -= 1
            self.scopes.pop()
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value)
        elif isinstance(stmt, ast.Break):
            if self.loop_depth == 0:
                raise SemanticError("break outside loop", stmt.line, stmt.col)
        elif isinstance(stmt, ast.Continue):
            if self.loop_depth == 0:
                raise SemanticError("continue outside loop", stmt.line, stmt.col)
        else:  # pragma: no cover - parser produces no other nodes
            raise SemanticError(f"unknown statement {type(stmt).__name__}")

    def _expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, (ast.IntLit, ast.FloatLit)):
            return
        if isinstance(expr, ast.Name):
            if not self._declared(expr.ident):
                raise SemanticError(
                    f"undefined variable {expr.ident!r}", expr.line, expr.col
                )
            return
        if isinstance(expr, ast.Unary):
            self._expr(expr.operand)
            return
        if isinstance(expr, ast.Binary):
            self._expr(expr.left)
            self._expr(expr.right)
            return
        if isinstance(expr, ast.Index):
            self._expr(expr.array)
            self._expr(expr.index)
            return
        if isinstance(expr, ast.Call):
            expected = self.signatures.get(expr.callee)
            if expected is None:
                expected = BUILTIN_ARITY.get(expr.callee)
            if expected is None:
                raise SemanticError(
                    f"call to unknown function {expr.callee!r}", expr.line, expr.col
                )
            if len(expr.args) != expected:
                raise SemanticError(
                    f"{expr.callee!r} expects {expected} args, got {len(expr.args)}",
                    expr.line,
                    expr.col,
                )
            for arg in expr.args:
                self._expr(arg)
            return
        raise SemanticError(  # pragma: no cover
            f"unknown expression {type(expr).__name__}"
        )


def analyze(module: ast.Module, entry: str = "main") -> dict[str, int]:
    """Check *module*; return the function signature table (name → arity)."""
    signatures: dict[str, int] = {}
    for fn in module.functions:
        if fn.name in signatures:
            raise SemanticError(f"duplicate function {fn.name!r}", fn.line, fn.col)
        if fn.name in BUILTIN_ARITY:
            raise SemanticError(
                f"function {fn.name!r} shadows a builtin", fn.line, fn.col
            )
        signatures[fn.name] = len(fn.params)
    if entry not in signatures:
        raise SemanticError(f"entry function {entry!r} not defined")
    for fn in module.functions:
        _FunctionChecker(signatures, fn).check()
    return signatures
