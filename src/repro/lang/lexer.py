"""MiniLang lexer: source text → token stream."""

from __future__ import annotations

from .errors import LexError
from .tokens import KEYWORDS, Token, TokenKind

_TWO_CHAR = {
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "&&": TokenKind.AND,
    "||": TokenKind.OR,
}

_ONE_CHAR = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMI,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "!": TokenKind.BANG,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
}


def tokenize(source: str) -> list[Token]:
    """Lex *source* into a token list ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)
    while i < n:
        ch = source[i]
        # Whitespace
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        # Comments: // to end of line
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                i += 1
            continue
        # Numbers
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start, start_col = i, col
            seen_dot = False
            while i < n and (source[i].isdigit() or (source[i] == "." and not seen_dot)):
                if source[i] == ".":
                    # Guard: "1." followed by non-digit is an int then an error
                    if i + 1 >= n or not source[i + 1].isdigit():
                        break
                    seen_dot = True
                i += 1
            text = source[start:i]
            col += i - start
            if seen_dot:
                tokens.append(Token(TokenKind.FLOAT, text, line, start_col, float(text)))
            else:
                tokens.append(Token(TokenKind.INT, text, line, start_col, int(text)))
            continue
        # Identifiers / keywords
        if ch.isalpha() or ch == "_":
            start, start_col = i, col
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            col += i - start
            kind = KEYWORDS.get(text, TokenKind.IDENT)
            tokens.append(Token(kind, text, line, start_col))
            continue
        # Two-char operators
        pair = source[i : i + 2]
        if pair in _TWO_CHAR:
            tokens.append(Token(_TWO_CHAR[pair], pair, line, col))
            i += 2
            col += 2
            continue
        # One-char tokens
        if ch in _ONE_CHAR:
            tokens.append(Token(_ONE_CHAR[ch], ch, line, col))
            i += 1
            col += 1
            continue
        raise LexError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token(TokenKind.EOF, "", line, col))
    return tokens
