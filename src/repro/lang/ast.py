"""MiniLang abstract syntax tree.

All nodes are frozen dataclasses carrying source positions for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Node:
    line: int = field(default=0, kw_only=True)
    col: int = field(default=0, kw_only=True)


# -- Expressions ------------------------------------------------------------

@dataclass(frozen=True)
class Expr(Node):
    pass


@dataclass(frozen=True)
class IntLit(Expr):
    value: int = 0


@dataclass(frozen=True)
class FloatLit(Expr):
    value: float = 0.0


@dataclass(frozen=True)
class Name(Expr):
    ident: str = ""


@dataclass(frozen=True)
class Unary(Expr):
    op: str = ""          # '-' or '!'
    operand: Expr | None = None


@dataclass(frozen=True)
class Binary(Expr):
    op: str = ""          # + - * / % == != < <= > >= && ||
    left: Expr | None = None
    right: Expr | None = None


@dataclass(frozen=True)
class Call(Expr):
    callee: str = ""
    args: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class Index(Expr):
    array: Expr | None = None
    index: Expr | None = None


# -- Statements --------------------------------------------------------------

@dataclass(frozen=True)
class Stmt(Node):
    pass


@dataclass(frozen=True)
class VarDecl(Stmt):
    name: str = ""
    init: Expr | None = None


@dataclass(frozen=True)
class Assign(Stmt):
    name: str = ""
    value: Expr | None = None


@dataclass(frozen=True)
class IndexAssign(Stmt):
    array: Expr | None = None
    index: Expr | None = None
    value: Expr | None = None


@dataclass(frozen=True)
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass(frozen=True)
class Block(Stmt):
    statements: tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr | None = None
    then_body: Block | None = None
    else_body: Block | None = None


@dataclass(frozen=True)
class While(Stmt):
    cond: Expr | None = None
    body: Block | None = None


@dataclass(frozen=True)
class For(Stmt):
    """``for (init; cond; step) body`` — desugared by codegen to a while."""

    init: Stmt | None = None
    cond: Expr | None = None
    step: Stmt | None = None
    body: Block | None = None


@dataclass(frozen=True)
class Return(Stmt):
    value: Expr | None = None


@dataclass(frozen=True)
class Break(Stmt):
    pass


@dataclass(frozen=True)
class Continue(Stmt):
    pass


# -- Top level ----------------------------------------------------------------

@dataclass(frozen=True)
class Function(Node):
    name: str = ""
    params: tuple[str, ...] = ()
    body: Block | None = None


@dataclass(frozen=True)
class Module(Node):
    functions: tuple[Function, ...] = ()

    def function(self, name: str) -> Function:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)
