"""Token definitions for MiniLang."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    # Literals / identifiers
    INT = "int"
    FLOAT = "float"
    IDENT = "ident"

    # Keywords
    FN = "fn"
    VAR = "var"
    IF = "if"
    ELSE = "else"
    WHILE = "while"
    FOR = "for"
    RETURN = "return"
    BREAK = "break"
    CONTINUE = "continue"

    # Punctuation
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMI = ";"

    # Operators
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    BANG = "!"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "&&"
    OR = "||"

    EOF = "eof"


KEYWORDS = {
    "fn": TokenKind.FN,
    "var": TokenKind.VAR,
    "if": TokenKind.IF,
    "else": TokenKind.ELSE,
    "while": TokenKind.WHILE,
    "for": TokenKind.FOR,
    "return": TokenKind.RETURN,
    "break": TokenKind.BREAK,
    "continue": TokenKind.CONTINUE,
}


@dataclass(frozen=True, slots=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    col: int
    value: object = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.col})"
