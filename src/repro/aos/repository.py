"""Rep: the cross-run profile repository baseline (Arnold et al., OOPSLA'05).

Rep aggregates the profiles of all past runs of an application into a
repository and derives, per method, a single recompilation plan — a short
sequence of ``(k, o)`` pairs ("when the sampler sees the method's k-th
sample, recompile it at level o") — that minimizes the method's *expected*
total time over the observed history. The same plan is applied to every
future run regardless of input: this is precisely the property the paper
contrasts Evolve against (history-average vs. input-specific).

Plan search follows the published approach in spirit: candidate sample
thresholds on a geometric ladder, plans bounded to a small number of pairs
(the "compilation bound"), expected cost evaluated against a histogram of
each method's per-run work observed in history.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..vm.config import OPT_LEVELS
from ..vm.opt.jit import JITCompiler
from ..vm.profiles import RunProfile
from .strategy import PairStrategy, RecompilePair

#: Geometric ladder of candidate sample thresholds (Fibonacci-spaced).
THRESHOLD_LADDER: tuple[int, ...] = (1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233)

#: Maximum pairs per method plan (the compilation bound).
MAX_PAIRS = 2

#: Number of histogram buckets used to summarize a method's work history.
HISTOGRAM_BUCKETS = 12


@dataclass(frozen=True)
class _WorkHistogram:
    """Bucketed distribution of one method's per-run work."""

    values: tuple[float, ...]   # representative work per bucket
    weights: tuple[float, ...]  # fraction of runs per bucket


def _histogram(works: list[float], buckets: int) -> _WorkHistogram:
    if not works:
        return _WorkHistogram((), ())
    ordered = sorted(works)
    if len(ordered) <= buckets:
        weight = 1.0 / len(ordered)
        return _WorkHistogram(tuple(ordered), tuple(weight for _ in ordered))
    # Equal-population buckets, represented by their means.
    values: list[float] = []
    weights: list[float] = []
    per_bucket = len(ordered) / buckets
    start = 0.0
    while start < len(ordered) - 1e-9:
        end = min(start + per_bucket, len(ordered))
        chunk = ordered[int(start) : max(int(end), int(start) + 1)]
        values.append(sum(chunk) / len(chunk))
        weights.append(len(chunk) / len(ordered))
        start = end
    return _WorkHistogram(tuple(values), tuple(weights))


class ProfileRepository:
    """Accumulates run profiles and derives Rep's per-method plans."""

    def __init__(
        self,
        jit: JITCompiler,
        sample_interval: float,
        max_pairs: int = MAX_PAIRS,
        ladder: tuple[int, ...] = THRESHOLD_LADDER,
    ):
        self.jit = jit
        self.sample_interval = float(sample_interval)
        self.max_pairs = max_pairs
        self.ladder = ladder
        #: method → list of per-run baseline-equivalent work (0 if uninvoked).
        self._history: dict[str, list[float]] = {}
        self._run_count = 0
        self._cached_strategy: PairStrategy | None = None
        self._cached_at_run = -1

    # -- recording ---------------------------------------------------------
    def record_run(self, profile: RunProfile) -> None:
        """Fold one finished run's profile into the repository."""
        self._run_count += 1
        seen = set(profile.method_work)
        for method, work in profile.method_work.items():
            self._history.setdefault(method, []).append(work)
        # Methods known from earlier runs but absent in this one did no work.
        for method, works in self._history.items():
            if method not in seen:
                works.append(0.0)
        # Backfill: a newly seen method did no work in earlier runs.
        for method in seen:
            works = self._history[method]
            if len(works) < self._run_count:
                self._history[method] = [0.0] * (
                    self._run_count - len(works)
                ) + works
        self._cached_strategy = None

    @property
    def run_count(self) -> int:
        return self._run_count

    # -- plan evaluation ---------------------------------------------------
    def _plan_cost(self, method: str, plan: tuple[RecompilePair, ...], work: float) -> float:
        """Total virtual time for *method* doing *work* under *plan*.

        Samples accrue at one per ``sample_interval`` cycles of application
        execution (compile time does not produce samples, matching the
        sampler's compiler-thread behaviour).
        """
        interval = self.sample_interval
        speed = self.jit.speed_factor
        exec_time = 0.0
        total = 0.0
        done = 0.0
        current = -1
        for pair in plan:
            threshold_time = pair.at_sample * interval
            dt = threshold_time - exec_time
            s = speed(method, current)
            dw = dt / s
            if done + dw >= work:
                return total + (work - done) * s
            done += dw
            exec_time = threshold_time
            total += dt
            total += self.jit.compile_cost(method, pair.level)
            current = pair.level
        return total + (work - done) * speed(method, current)

    def _expected_cost(
        self, method: str, plan: tuple[RecompilePair, ...], hist: _WorkHistogram
    ) -> float:
        return sum(
            w * self._plan_cost(method, plan, value)
            for value, w in zip(hist.values, hist.weights)
        )

    def _candidate_plans(self) -> list[tuple[RecompilePair, ...]]:
        plans: list[tuple[RecompilePair, ...]] = [()]
        upgrade_levels = [lvl for lvl in OPT_LEVELS if lvl >= 0]
        for k in self.ladder:
            for level in upgrade_levels:
                plans.append((RecompilePair(k, level),))
        if self.max_pairs >= 2:
            for i, k1 in enumerate(self.ladder):
                for k2 in self.ladder[i + 1 :]:
                    for a, lvl1 in enumerate(upgrade_levels):
                        for lvl2 in upgrade_levels[a + 1 :]:
                            plans.append(
                                (RecompilePair(k1, lvl1), RecompilePair(k2, lvl2))
                            )
        return plans

    # -- strategy derivation ---------------------------------------------------
    def strategy(self) -> PairStrategy:
        """The repository-optimal plan per method, over history so far."""
        if (
            self._cached_strategy is not None
            and self._cached_at_run == self._run_count
        ):
            return self._cached_strategy
        min_compile = min(
            self.jit.config.compile_rate[lvl] for lvl in OPT_LEVELS if lvl >= 0
        )
        plans: dict[str, tuple[RecompilePair, ...]] = {}
        candidates = self._candidate_plans()
        for method, works in self._history.items():
            # A method whose heaviest run is cheaper than any compile can
            # never benefit; skip the search.
            size = self.jit.program.method(method).size
            if max(works, default=0.0) <= min_compile * size:
                continue
            hist = _histogram(works, HISTOGRAM_BUCKETS)
            best_plan: tuple[RecompilePair, ...] = ()
            best_cost = self._expected_cost(method, (), hist)
            for plan in candidates:
                if not plan:
                    continue
                cost = self._expected_cost(method, plan, hist)
                if cost < best_cost - 1e-9:
                    best_cost = cost
                    best_plan = plan
            if best_plan:
                plans[method] = best_plan
        self._cached_strategy = PairStrategy(plans)
        self._cached_at_run = self._run_count
        return self._cached_strategy
