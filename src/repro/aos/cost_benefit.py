"""The Jikes RVM cost-benefit recompilation model, online and posterior.

Online form (§IV-A of the paper): when a method is sampled, estimate the
time it will run in the future as equal to the time it has already run
(``future = past``), then recompile at the level whose *benefit* (future
time saved by faster code) most exceeds its *cost* (compile time), if any.

Posterior form (``GetIdealOptStrategy``): after a run, with the method's
full baseline-equivalent work known, pick for each method the level that
would have minimized ``compile_cost(level) + work × speed_factor(level)``
over the whole execution. The paper treats this as the *ideal strategy*
the learner trains toward.
"""

from __future__ import annotations

from ..vm.config import BASELINE_LEVEL, OPT_LEVELS
from ..vm.opt.jit import JITCompiler
from ..vm.profiles import RunProfile
from .strategy import LevelStrategy


class CostBenefitModel:
    """Cost-benefit computations against one program's JIT cost curves."""

    def __init__(self, jit: JITCompiler, sample_interval: float):
        self.jit = jit
        self.sample_interval = float(sample_interval)

    # -- online (reactive) -------------------------------------------------
    def choose_recompile_level(
        self, method: str, current_level: int, sample_count: int
    ) -> int | None:
        """Return the level to recompile *method* at, or None to stay put.

        *sample_count* is the method's cumulative timer samples; each sample
        represents ``sample_interval`` cycles of observed execution at the
        levels the method has run at so far. Following Jikes, the expected
        future running time equals the observed past running time.
        """
        past_cycles = sample_count * self.sample_interval
        future_cycles = past_cycles
        current_speed = self.jit.speed_factor(method, current_level)
        best_level: int | None = None
        best_net = 0.0
        for level in OPT_LEVELS:
            if level <= current_level:
                continue
            new_speed = self.jit.speed_factor(method, level)
            benefit = future_cycles * (1.0 - new_speed / current_speed)
            cost = self.jit.compile_cost(method, level)
            net = benefit - cost
            if net > best_net:
                best_net = net
                best_level = level
        return best_level

    # -- posterior (ideal) ---------------------------------------------------
    def ideal_level(self, method: str, work_cycles: float) -> int:
        """The level minimizing total cost for a method that performs
        *work_cycles* of baseline-equivalent work across a whole run.

        Every method pays the baseline compile once (first encounter), so
        the baseline compile cost is sunk and excluded; a higher level adds
        its own compile cost on top.
        """
        best_level = BASELINE_LEVEL
        best_cost = work_cycles  # run entirely at baseline (speed 1.0)
        for level in OPT_LEVELS:
            if level == BASELINE_LEVEL:
                continue
            total = (
                self.jit.compile_cost(method, level)
                + work_cycles * self.jit.speed_factor(method, level)
            )
            if total < best_cost:
                best_cost = total
                best_level = level
        return best_level

    def ideal_strategy(self, profile: RunProfile) -> LevelStrategy:
        """Posterior ideal strategy for every method invoked in *profile*."""
        levels = {
            method: self.ideal_level(method, profile.method_work.get(method, 0.0))
            for method in profile.invocations
        }
        return LevelStrategy(levels)
