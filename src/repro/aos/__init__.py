"""The adaptive optimization system (AOS).

Contains the three optimization regimes the paper compares:

- *Default*: :class:`AdaptiveController`, the reactive Jikes-style
  cost-benefit scheme.
- *Rep*: :class:`ProfileRepository` + :class:`PairPlanController`, the
  cross-run repository baseline of Arnold et al.
- *Evolve* builds on these from :mod:`repro.core` (prediction replaces the
  reactive scheme when confidence is high; otherwise Default runs).
"""

from .controller import AdaptiveController, PairPlanController
from .phase import PhaseAdaptiveController, PhaseDetector, window_similarity
from .cost_benefit import CostBenefitModel
from .repository import MAX_PAIRS, THRESHOLD_LADDER, ProfileRepository
from .strategy import LevelStrategy, PairStrategy, RecompilePair

__all__ = [
    "AdaptiveController",
    "CostBenefitModel",
    "LevelStrategy",
    "MAX_PAIRS",
    "PairPlanController",
    "PairStrategy",
    "PhaseAdaptiveController",
    "PhaseDetector",
    "window_similarity",
    "ProfileRepository",
    "RecompilePair",
    "THRESHOLD_LADDER",
]
