"""Optimization strategy representations.

Two strategy shapes appear in the paper:

- :class:`LevelStrategy` — one optimization level per method. This is what
  the evolvable VM predicts (*"the predictor in Evolve produces only one
  number (l) for each method"*) and what the posterior ideal-strategy
  computation yields.
- :class:`PairStrategy` — per method, a sequence of ``(k, o)`` pairs:
  *"the method should be (re)compiled using level o when the sampler
  encounters the kth sample of the method"*. This is the shape of Arnold
  et al.'s repository-based strategies (Rep).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..vm.config import BASELINE_LEVEL, OPT_LEVELS


@dataclass(frozen=True)
class LevelStrategy:
    """Per-method target optimization levels.

    Methods absent from the mapping carry no advice (they stay under
    whatever scheme the executing driver applies to unknown methods).
    """

    levels: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for method, level in self.levels.items():
            if level not in OPT_LEVELS:
                raise ValueError(f"{method}: invalid level {level}")

    def level_for(self, method: str) -> int | None:
        return self.levels.get(method)

    def methods(self) -> tuple[str, ...]:
        return tuple(sorted(self.levels))

    def __len__(self) -> int:
        return len(self.levels)

    def agreement(self, other: "LevelStrategy") -> dict[str, bool]:
        """Per-method agreement map over the union of covered methods.

        A method counts as agreeing when both strategies assign it the same
        level; a method known to only one side counts as disagreement with
        one exception — an absent entry matches an assignment of the
        baseline level, since "no advice" executes at baseline.
        """
        result: dict[str, bool] = {}
        for method in set(self.levels) | set(other.levels):
            mine = self.levels.get(method, BASELINE_LEVEL)
            theirs = other.levels.get(method, BASELINE_LEVEL)
            result[method] = mine == theirs
        return result


@dataclass(frozen=True)
class RecompilePair:
    """Recompile to *level* when the method's sample count reaches *at_sample*."""

    at_sample: int
    level: int

    def __post_init__(self) -> None:
        if self.at_sample < 1:
            raise ValueError("at_sample must be >= 1")
        if self.level not in OPT_LEVELS:
            raise ValueError(f"invalid level {self.level}")


@dataclass(frozen=True)
class PairStrategy:
    """Per-method ordered ``(k, o)`` recompilation plans (the Rep shape)."""

    plans: dict[str, tuple[RecompilePair, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for method, pairs in self.plans.items():
            ks = [p.at_sample for p in pairs]
            os_ = [p.level for p in pairs]
            if ks != sorted(ks) or len(set(ks)) != len(ks):
                raise ValueError(f"{method}: sample thresholds must increase")
            if os_ != sorted(os_) or len(set(os_)) != len(os_):
                raise ValueError(f"{method}: levels must increase")

    def plan_for(self, method: str) -> tuple[RecompilePair, ...]:
        return self.plans.get(method, ())

    def methods(self) -> tuple[str, ...]:
        return tuple(sorted(self.plans))

    def __len__(self) -> int:
        return len(self.plans)

    def final_levels(self) -> LevelStrategy:
        """The level each planned method would reach if fully executed."""
        return LevelStrategy(
            {m: pairs[-1].level for m, pairs in self.plans.items() if pairs}
        )
