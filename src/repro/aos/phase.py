"""Phase-based adaptive recompilation (after Gu & Verbrugge, CGO'06).

The paper positions its cross-run prediction as *complementary* to
phase-based adaptation: phase detection offers fine-grained in-run control
while Evolve predicts for the entire execution. To let experiments compare
against that axis too, this module implements a phase-aware controller:

- a :class:`PhaseDetector` watches the stream of timer samples and splits
  the run into phases by the stability of the sampled-method distribution
  (a working-set similarity test over sliding windows);
- :class:`PhaseAdaptiveController` scales the cost-benefit model's
  future-time estimate by the phase's observed stability: inside a long
  stable phase, the future is predicted to extend further than `past`
  (aggressive recompilation); right after a phase change, history is
  discounted (conservative), since the old behaviour no longer predicts
  the new phase.
"""

from __future__ import annotations

from collections import Counter

from ..vm.interpreter import Interpreter
from .cost_benefit import CostBenefitModel


def window_similarity(a: Counter, b: Counter) -> float:
    """Cosine-like overlap between two sample-count windows in [0, 1]."""
    if not a or not b:
        return 0.0
    dot = sum(count * b.get(method, 0) for method, count in a.items())
    norm_a = sum(count * count for count in a.values()) ** 0.5
    norm_b = sum(count * count for count in b.values()) ** 0.5
    if norm_a == 0 or norm_b == 0:
        return 0.0
    return dot / (norm_a * norm_b)


class PhaseDetector:
    """Detects phase boundaries in the timer-sample stream.

    Samples are grouped into fixed-size windows; a new window whose method
    distribution diverges from the previous one (similarity below the
    threshold) starts a new phase.
    """

    def __init__(self, window_samples: int = 8, similarity_threshold: float = 0.5):
        if window_samples < 1:
            raise ValueError("window_samples must be >= 1")
        self.window_samples = window_samples
        self.similarity_threshold = similarity_threshold
        self.current_window: Counter = Counter()
        self.previous_window: Counter | None = None
        self.phase_index = 0
        self.windows_in_phase = 0
        self.boundaries: list[float] = []

    def observe(self, method: str, clock: float) -> bool:
        """Feed one sample; returns True when a phase boundary is crossed."""
        self.current_window[method] += 1
        if sum(self.current_window.values()) < self.window_samples:
            return False
        window = self.current_window
        self.current_window = Counter()
        changed = False
        if self.previous_window is not None:
            similarity = window_similarity(self.previous_window, window)
            if similarity < self.similarity_threshold:
                self.phase_index += 1
                self.windows_in_phase = 0
                self.boundaries.append(clock)
                changed = True
        self.previous_window = window
        self.windows_in_phase += 1
        return changed

    @property
    def stability(self) -> float:
        """How established the current phase is, in [0, 1]."""
        return min(1.0, self.windows_in_phase / 4.0)


class PhaseAdaptiveController:
    """Reactive controller whose aggressiveness tracks phase stability.

    The cost-benefit future estimate becomes
    ``future = past × (0.5 + 1.5 × stability)``: fresh phases discount
    history (×0.5), long stable phases extrapolate beyond it (×2.0) —
    the varying-aggressiveness scheme of phase-based recompilation.
    """

    def __init__(
        self,
        interpreter: Interpreter,
        window_samples: int = 8,
        similarity_threshold: float = 0.5,
    ):
        self.interpreter = interpreter
        self.model = CostBenefitModel(
            interpreter.jit, interpreter.config.sample_interval
        )
        self.detector = PhaseDetector(window_samples, similarity_threshold)
        self.decisions: list[tuple[str, int, int]] = []
        #: Sample counts since the current phase began (history discount).
        self._phase_counts: dict[str, int] = {}
        interpreter.sampler.add_listener(self)

    def on_sample(self, method: str, clock: float, count: int) -> None:
        if self.detector.observe(method, clock):
            self._phase_counts.clear()
        self._phase_counts[method] = self._phase_counts.get(method, 0) + 1
        aggressiveness = 0.5 + 1.5 * self.detector.stability
        effective = max(1, int(self._phase_counts[method] * aggressiveness))
        current = self.interpreter.current_level(method)
        level = self.model.choose_recompile_level(method, current, effective)
        if level is not None:
            self.decisions.append((method, count, level))
            self.interpreter.request_recompile(method, level)

    @property
    def phase_count(self) -> int:
        return self.detector.phase_index + 1
