"""Adaptive optimization controllers driving an :class:`Interpreter`.

Controllers are sample listeners: they attach to a live interpreter's
sampler and translate observed hotness into recompilation requests.

- :class:`AdaptiveController` — the default reactive scheme (Jikes RVM's
  cost-benefit model on every sample).
- :class:`PairPlanController` — replays a fixed :class:`PairStrategy`
  (the Rep baseline's execution arm).
"""

from __future__ import annotations

from ..vm.interpreter import Interpreter
from .cost_benefit import CostBenefitModel
from .strategy import PairStrategy


class AdaptiveController:
    """Jikes-style reactive controller: sample → cost-benefit → recompile.

    Optionally restricted to a subset of methods (``exclude``): the
    evolvable VM uses this to keep reactive control over methods its
    predicted strategy does not cover while leaving predicted methods at
    their proactively chosen levels.
    """

    def __init__(
        self,
        interpreter: Interpreter,
        exclude: frozenset[str] = frozenset(),
    ):
        self.interpreter = interpreter
        self.model = CostBenefitModel(
            interpreter.jit, interpreter.config.sample_interval
        )
        self.exclude = exclude
        self.decisions: list[tuple[str, int, int]] = []  # (method, at_sample, level)
        interpreter.sampler.add_listener(self)

    def on_sample(self, method: str, clock: float, count: int) -> None:
        if method in self.exclude:
            return
        current = self.interpreter.current_level(method)
        level = self.model.choose_recompile_level(method, current, count)
        if level is not None:
            self.decisions.append((method, count, level))
            self.interpreter.request_recompile(method, level)


class PairPlanController:
    """Executes a :class:`PairStrategy`: recompile method *m* to level *o*
    once its sample count reaches *k*, for each planned pair in order."""

    def __init__(self, interpreter: Interpreter, strategy: PairStrategy):
        self.interpreter = interpreter
        self.strategy = strategy
        self._next_pair_index: dict[str, int] = {}
        interpreter.sampler.add_listener(self)

    def on_sample(self, method: str, clock: float, count: int) -> None:
        plan = self.strategy.plan_for(method)
        if not plan:
            return
        index = self._next_pair_index.get(method, 0)
        while index < len(plan) and count >= plan[index].at_sample:
            self.interpreter.request_recompile(method, plan[index].level)
            index += 1
        self._next_pair_index[method] = index
