"""Scenario runner: executes one benchmark under any subset of the four
scenarios — Default, Rep, Evolve, and the phase-based comparator.

The protocol follows §V-B: each experiment is a sequence of runs (30, or 70
for programs with many inputs), every run using one input picked uniformly
at random from the program's input population. The same input sequence and
per-run RNG seeds are used for all scenarios, so per-run comparisons are
apples-to-apples; the default run of each input doubles as the speedup
baseline.

This module is the serial reference implementation; ``jobs > 1`` hands the
same protocol to the parallel engine (:mod:`.parallel`), which produces
bitwise-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

from ..bench.base import BenchInput, Benchmark
from ..core.application import Application
from ..aos.phase import PhaseAdaptiveController
from ..core.evolvable import EvolvableVM, RepVM, RunOutcome, run_default
from ..scenarios.drift import DriftSpec, drift_sequence
from ..vm.interpreter import Interpreter
from ..xicl.features import FeatureVector
from ..learning.tree import TreeParams
from ..vm.config import DEFAULT_CONFIG, VMConfig
from ..vm.opt.jit import JITCompiler


@dataclass
class ExperimentResult:
    """All observations from one benchmark's experiment: one outcome list
    per executed scenario (Default, Rep, Evolve, and optionally the
    phase-based comparator).

    ``evolve_vm``/``rep_vm`` hold the live scenario VMs when the serial
    runner produced the result; the parallel engine leaves them ``None``
    (they stay in the worker processes) and fills ``evolve_summary`` —
    the pickle-safe model snapshot — instead. The serial runner populates
    ``evolve_summary`` too, so reports can rely on it either way.
    """

    benchmark: str
    app: Application
    inputs: list[BenchInput]
    sequence: list[int]
    default: list[RunOutcome] = field(default_factory=list)
    rep: list[RunOutcome] = field(default_factory=list)
    evolve: list[RunOutcome] = field(default_factory=list)
    phase: list[RunOutcome] = field(default_factory=list)
    evolve_vm: EvolvableVM | None = None
    rep_vm: RepVM | None = None
    evolve_summary: dict | None = None
    #: The non-stationary input schedule the sequence was drawn from,
    #: when the experiment ran under drift (``None`` = the paper's
    #: stationary i.i.d. protocol).
    drift_spec: DriftSpec | None = None

    # -- derived series -----------------------------------------------------
    def speedups(self, scenario: str) -> list[float]:
        """Per-run speedups of *scenario* over the default runs."""
        series = {
            "rep": self.rep,
            "evolve": self.evolve,
            "phase": self.phase,
        }[scenario]
        return [
            base.total_cycles / run.total_cycles
            for base, run in zip(self.default, series)
        ]

    def accuracies(self) -> list[float]:
        return [
            out.accuracy for out in self.evolve if out.accuracy is not None
        ]

    def confidences(self) -> list[float]:
        return [
            out.confidence_after
            for out in self.evolve
            if out.confidence_after is not None
        ]

    def default_times(self) -> list[float]:
        return [out.total_cycles for out in self.default]


def run_experiment(
    bench: Benchmark,
    seed: int = 0,
    runs: int | None = None,
    config: VMConfig = DEFAULT_CONFIG,
    gamma: float | None = None,
    threshold: float | None = None,
    tree_params: TreeParams | None = None,
    scenarios: tuple[str, ...] = ("default", "rep", "evolve"),
    sequence: list[int] | None = None,
    drift: DriftSpec | None = None,
    jobs: int = 1,
) -> ExperimentResult:
    """Run the full §V-B protocol for one benchmark.

    *sequence* overrides the random input order (used by the
    input-order-sensitivity study); otherwise inputs are drawn uniformly
    with a deterministic RNG derived from *seed* — unless *drift* names
    a non-stationary schedule, in which case the sequence comes from
    :func:`~repro.scenarios.drift.drift_sequence` (same determinism
    contract, shifting distribution).

    *jobs* > 1 delegates to the parallel engine: scenarios (and run
    ranges of the stateless ones) execute as independent worker cells,
    with bit-identical outcomes.
    """
    if sequence is not None and drift is not None:
        raise ValueError("pass either an explicit sequence or a drift spec")
    if jobs > 1 and sequence is None:
        from .parallel import run_experiment_parallel

        return run_experiment_parallel(
            bench,
            jobs=jobs,
            seed=seed,
            runs=runs,
            config=config,
            scenarios=tuple(scenarios),
            gamma=gamma,
            threshold=threshold,
            tree_params=tree_params,
            drift=drift,
        )
    app, inputs = bench.build(seed=seed)
    n_runs = runs if runs is not None else bench.runs
    if sequence is not None:
        sequence = list(sequence)
    elif drift is not None:
        sequence = drift_sequence(drift, len(inputs), n_runs, seed)
    else:
        rng = Random(seed * 7919 + 17)
        sequence = [rng.randrange(len(inputs)) for _ in range(n_runs)]

    jit = JITCompiler(app.program, config)
    result = ExperimentResult(
        benchmark=bench.name,
        app=app,
        inputs=inputs,
        sequence=sequence,
        drift_spec=drift,
    )

    evolve_kwargs: dict = {"config": config, "jit": jit}
    if gamma is not None:
        evolve_kwargs["gamma"] = gamma
    if threshold is not None:
        evolve_kwargs["threshold"] = threshold
    if tree_params is not None:
        evolve_kwargs["tree_params"] = tree_params
    evolve_vm = EvolvableVM(app, **evolve_kwargs)
    rep_vm = RepVM(app, config=config, jit=jit)
    result.evolve_vm = evolve_vm
    result.rep_vm = rep_vm

    for run_index, input_index in enumerate(sequence):
        cmdline = inputs[input_index].cmdline
        if "default" in scenarios:
            result.default.append(
                run_default(app, cmdline, config=config, jit=jit, rng_seed=run_index)
            )
        if "rep" in scenarios:
            result.rep.append(rep_vm.run(cmdline, rng_seed=run_index))
        if "evolve" in scenarios:
            result.evolve.append(evolve_vm.run(cmdline, rng_seed=run_index))
        if "phase" in scenarios:
            result.phase.append(
                _run_phase(app, cmdline, config, jit, rng_seed=run_index)
            )
    if "evolve" in scenarios:
        result.evolve_summary = dict(evolve_vm.models.summary())
        result.evolve_summary["final_confidence"] = evolve_vm.confidence.value
    return result


def _run_phase(app, cmdline, config, jit, rng_seed: int) -> RunOutcome:
    """One run under the phase-based adaptive comparator."""
    tokens = app.split_cmdline(cmdline)
    cmd_str = cmdline if isinstance(cmdline, str) else " ".join(cmdline)
    translator = app.make_translator()
    fvector = (
        translator.build_fvector(tokens)
        if translator is not None
        else FeatureVector()
    )
    interp = Interpreter(app.program, config=config, rng_seed=rng_seed, jit=jit)
    PhaseAdaptiveController(interp)
    profile = interp.run(app.entry_args(tokens, fvector))
    return RunOutcome(
        scenario="phase",
        cmdline=cmd_str,
        result=interp.result,
        profile=profile,
        fvector=fvector,
    )


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary used by the Figure 10 boxplots."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @classmethod
    def of(cls, values: list[float]) -> "BoxStats":
        if not values:
            raise ValueError("no values")
        ordered = sorted(values)

        def quantile(q: float) -> float:
            if len(ordered) == 1:
                return ordered[0]
            pos = q * (len(ordered) - 1)
            lo = int(pos)
            hi = min(lo + 1, len(ordered) - 1)
            frac = pos - lo
            return ordered[lo] * (1 - frac) + ordered[hi] * frac

        return cls(
            minimum=ordered[0],
            q1=quantile(0.25),
            median=quantile(0.5),
            q3=quantile(0.75),
            maximum=ordered[-1],
        )
