"""Server studies: request-specific optimization and fleet serving (§V).

The paper notes that for long-running servers "different requests often
trigger different behaviors… the concept of Evolve may yield proactive,
request-specific optimizations". Two studies model that, at two scales:

1. **The classic single-tenant study** (:func:`run_server_study`): a
   server handles a stream of requests, each request being one execution
   of the handler program on a *shared, warm* VM (one JIT code cache and
   one evolvable learner across the whole stream — exactly how
   `EvolvableVM` shares state across runs). Request "command lines"
   carry the request's type and payload size; the learner predicts
   per-request optimization strategies. Reported: per-request *virtual*
   latency percentiles (p50/p95/p99) under the default reactive scheme
   vs. request-specific Evolve, plus tail-latency improvement.
   Expected shape: the heavy-request tail (p99, mean) improves strongly
   — proactive compilation removes the reactive ramp-up every heavy
   request pays — while the smallest requests give a few percent back to
   per-request prediction cost (the §V-B.2 small-input effect).

2. **The fleet-serving study** (:func:`run_fleet_study`): the driving
   scenario for ``repro serve`` (``docs/serving.md``). A
   :class:`~repro.serving.server.FleetServer` keeps several tenant
   applications resident and handles a sustained concurrent mixed-tenant
   stream of run/predict requests — thousands of requests — through
   bounded queues, predict batching, periodic hot model swaps, and a
   crash-safe model registry. Reported: *wall-clock* request latency
   percentiles (p50/p95/p99), throughput, shed/swap counts, and the
   load-bearing invariant that every tenant's outcome stream is
   bit-identical to replaying its requests serially. The bench suite's
   ``serving`` section (``docs/benchmarks.md``) wraps this study.

Both studies are deterministic given their seed. The fleet study drives
the serving layer end to end, including a deliberate admission-control
overload burst (sheds counted, accepted traffic unaffected).
"""

from __future__ import annotations

import asyncio
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from random import Random

from ..core.application import Application
from ..core.evolvable import EvolvableVM, run_default
from ..lang.compiler import compile_source
from ..vm.opt.jit import JITCompiler
from ..vm.config import DEFAULT_CONFIG, VMConfig
from ..xicl.parser import parse_spec
from .report import format_table

#: The request handler: three endpoint kernels with different profiles.
SERVER_SOURCE = """
fn parse_request(size) {
  burn(220 + size / 40);
  return size;
}

fn endpoint_search(size) {
  var hits = 0;
  var pos = 0;
  while (pos < size) {
    burn(560);
    hits = hits + 1;
    pos = pos + 256;
  }
  return hits;
}

fn endpoint_render(size) {
  var rows = 0;
  var pos = 0;
  while (pos < size) {
    burn(1400);
    rows = rows + 1;
    pos = pos + 512;
  }
  return rows;
}

fn endpoint_stats(size) {
  burn(300 + size * 2);
  return size;
}

fn format_response(units) {
  burn(90 + units * 3);
  return units;
}

fn main(kind, size) {
  parse_request(size);
  var units = 0;
  if (kind == 0) { units = endpoint_search(size); }
  if (kind == 1) { units = endpoint_render(size); }
  if (kind == 2) { units = endpoint_stats(size); }
  format_response(units);
  return units;
}
"""

SERVER_SPEC = """
option {name=-e:--endpoint; type=STR; attr=VAL; default=search; has_arg=y}
option {name=-b:--bytes; type=NUM; attr=VAL; default=4096; has_arg=y}
"""

_ENDPOINTS = ("search", "render", "stats")


def build_server_app() -> Application:
    program = compile_source(SERVER_SOURCE, name="server")
    spec = parse_spec(SERVER_SPEC)

    def launcher(tokens, fvector, fs):
        return (
            _ENDPOINTS.index(str(fvector.get("-e.VAL", "search"))),
            int(fvector["-b.VAL"]),
        )

    return Application(
        name="server", program=program, spec=spec, launcher=launcher
    )


def generate_request_stream(rng: Random, count: int) -> list[str]:
    """A skewed request mix (search-heavy) with bursty payload sizes."""
    requests = []
    for __ in range(count):
        endpoint = rng.choices(_ENDPOINTS, weights=(5, 2, 3))[0]
        size = rng.choice([512, 2048, 8192, 32768, 131072])
        requests.append(f"-e {endpoint} -b {size}")
    return requests


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


@dataclass
class ServerStudyResult:
    requests: int
    default_latency: dict[str, float]   # p50/p95/p99/mean, virtual ms
    evolve_latency: dict[str, float]
    tail_improvement: float             # p95 speedup
    applied_fraction: float


def run_server_study(
    seed: int = 0, requests: int = 120, config: VMConfig = DEFAULT_CONFIG
) -> ServerStudyResult:
    app = build_server_app()
    stream = generate_request_stream(Random(seed * 13 + 7), requests)

    # Default server: reactive optimizer, warm shared code cache.
    default_jit = JITCompiler(app.program, config)
    default_latencies = [
        run_default(app, request, config=config, jit=default_jit, rng_seed=i)
        .total_cycles
        for i, request in enumerate(stream)
    ]

    # Evolve server: shared learner + code cache across the stream.
    vm = EvolvableVM(app, config=config, cache_translations=True)
    evolve_latencies = []
    applied = 0
    for i, request in enumerate(stream):
        outcome = vm.run(request, rng_seed=i)
        evolve_latencies.append(outcome.total_cycles)
        applied += 1 if outcome.applied_prediction else 0

    def summarize(latencies: list[float]) -> dict[str, float]:
        to_ms = 1000.0 / config.cycles_per_second
        return {
            "p50": _percentile(latencies, 0.50) * to_ms,
            "p95": _percentile(latencies, 0.95) * to_ms,
            "p99": _percentile(latencies, 0.99) * to_ms,
            "mean": sum(latencies) / len(latencies) * to_ms,
        }

    default_summary = summarize(default_latencies)
    evolve_summary = summarize(evolve_latencies)
    return ServerStudyResult(
        requests=requests,
        default_latency=default_summary,
        evolve_latency=evolve_summary,
        tail_improvement=default_summary["p95"] / evolve_summary["p95"],
        applied_fraction=applied / requests,
    )


def render(result: ServerStudyResult) -> str:
    rows = [
        [
            metric,
            f"{result.default_latency[metric]:.2f}",
            f"{result.evolve_latency[metric]:.2f}",
            f"{result.default_latency[metric] / result.evolve_latency[metric]:.3f}",
        ]
        for metric in ("p50", "p95", "p99", "mean")
    ]
    table = format_table(
        ["latency", "default (ms)", "evolve (ms)", "speedup"], rows
    )
    return (
        f"Request-specific optimization study ({result.requests} requests)\n"
        f"{table}\n"
        f"prediction applied on {result.applied_fraction:.0%} of requests; "
        f"p95 tail improved {result.tail_improvement:.3f}x"
    )


def main(seed: int = 0, requests: int = 120) -> str:
    output = render(run_server_study(seed=seed, requests=requests))
    print(output)
    return output


# ---------------------------------------------------------------------------
# The fleet-serving study (the `repro serve` driving scenario)
# ---------------------------------------------------------------------------

#: Tenant profiles: (name, endpoint-mix weights). Same handler program,
#: different traffic shapes — so every tenant learns a *different*
#: input→strategy mapping while sharing the fleet's JIT artifact cache.
TENANT_PROFILES: tuple[tuple[str, tuple[int, int, int]], ...] = (
    ("search-svc", (8, 1, 1)),
    ("render-svc", (1, 7, 2)),
    ("stats-svc", (2, 2, 6)),
    ("mixed-svc", (4, 3, 3)),
)

#: Fraction of fleet requests that are predict-only (no execution).
PREDICT_FRACTION = 0.2


def build_tenant_apps(count: int = 4) -> list[Application]:
    """Distinct tenant applications over the shared server handler."""
    count = max(1, min(count, len(TENANT_PROFILES)))
    program = compile_source(SERVER_SOURCE, name="server")
    apps = []
    for name, _ in TENANT_PROFILES[:count]:
        spec = parse_spec(SERVER_SPEC)

        def launcher(tokens, fvector, fs):
            return (
                _ENDPOINTS.index(str(fvector.get("-e.VAL", "search"))),
                int(fvector["-b.VAL"]),
            )

        apps.append(
            Application(name=name, program=program, spec=spec, launcher=launcher)
        )
    return apps


def generate_fleet_requests(
    seed: int, count: int, tenants: int = 4
) -> list[dict]:
    """A deterministic interleaved mixed-tenant request stream.

    ~80% ``run`` / ~20% ``predict`` ops; each tenant's endpoint mix
    follows its profile weights; run seeds are the tenant's running
    request index (what the serial replay uses too).
    """
    profiles = TENANT_PROFILES[: max(1, min(tenants, len(TENANT_PROFILES)))]
    rng = Random(seed * 9176 + 11)
    run_counters = {name: 0 for name, _ in profiles}
    requests: list[dict] = []
    for i in range(count):
        name, weights = profiles[rng.randrange(len(profiles))]
        endpoint = rng.choices(_ENDPOINTS, weights=weights)[0]
        size = rng.choice([512, 2048, 8192, 32768, 131072])
        op = "predict" if rng.random() < PREDICT_FRACTION else "run"
        request = {
            "op": op,
            "app": name,
            "cmdline": f"-e {endpoint} -b {size}",
            "id": i,
        }
        if op == "run":
            request["seed"] = run_counters[name]
            run_counters[name] += 1
        requests.append(request)
    return requests


def _build_study_fleet(
    tenants: int,
    registry_dir: str | None,
    refit_interval: int,
    config: VMConfig,
):
    from ..serving.registry import ModelRegistry
    from ..serving.tenant import build_fleet

    registry = ModelRegistry(registry_dir)
    fleet = build_fleet(
        build_tenant_apps(tenants),
        registry=registry,
        config=config,
        refit_interval=refit_interval,
    )
    return fleet, registry


def run_requests_serial(
    requests: list[dict],
    *,
    tenants: int = 4,
    refit_interval: int = 20,
    config: VMConfig = DEFAULT_CONFIG,
    registry_dir: str | None = None,
    kill: tuple[int, int, int] | None = None,
) -> dict[str, list[dict]]:
    """The per-tenant serial baseline the concurrent server must match.

    Replays each tenant's subsequence of *requests* in order on a fresh
    fleet, applying the same auto-swap policy the server applies (swap
    after ``refit_interval`` runs, inside the tenant's op stream).
    Returns each tenant's ordered deterministic response payloads.

    *kill* = ``(request_index, shard_index, shard_count)`` models a
    shard worker death at a quiesced boundary: before processing
    ``requests[request_index]``, every tenant hashing into
    *shard_index* (:func:`~repro.serving.shards.shard_of`) is torn down
    and rebuilt from *registry_dir* — state-file restore plus generation
    sidecar, exactly what a respawned worker does — so un-persisted
    learning since the last swap is lost on both sides identically.
    Kill modeling requires a real *registry_dir* (swap-point saves are
    what the rebuilt tenants restore from).
    """
    fleet, _ = _build_study_fleet(
        tenants, registry_dir, refit_interval, config
    )
    by_name = {tenant.name: tenant for tenant in fleet}
    outcomes: dict[str, list[dict]] = {tenant.name: [] for tenant in fleet}
    for i, request in enumerate(requests):
        if kill is not None and i == kill[0]:
            _serial_respawn(
                by_name, kill[1], kill[2], registry_dir,
                refit_interval, config,
            )
        tenant = by_name[request["app"]]
        if request["op"] == "run":
            payload = tenant.run(request["cmdline"], request.get("seed"))
            outcomes[tenant.name].append(payload)
            if tenant.due_for_swap():
                tenant.swap()
        else:
            outcomes[tenant.name].append(tenant.predict(request["cmdline"]))
    return outcomes


def _serial_respawn(
    by_name: dict,
    shard_index: int,
    shard_count: int,
    registry_dir: str | None,
    refit_interval: int,
    config: VMConfig,
) -> None:
    """Rebuild the killed shard's tenants the way a respawned worker
    does: fresh registry over the same root, state + generation restored
    from the last persisted swap."""
    from ..serving.registry import ModelRegistry
    from ..serving.shards import shard_of
    from ..serving.tenant import build_fleet

    killed = [
        name
        for name in by_name
        if shard_of(name, shard_count) == shard_index
    ]
    apps = [by_name[name].app for name in killed]
    registry = ModelRegistry(registry_dir)
    for tenant in build_fleet(
        apps,
        registry=registry,
        config=config,
        refit_interval=refit_interval,
    ):
        by_name[tenant.name] = tenant


@dataclass
class FleetStudyResult:
    """What one fleet-serving study produced (see ``docs/serving.md``)."""

    requests: int
    tenants: int
    wall_s: float
    serial_wall_s: float
    rps: float
    latency_ms: dict[str, float]          # p50/p95/p99/mean, host wall
    swaps: int
    batches: int
    batched_predicts: int
    sheds: int                            # from the overload burst
    burst_accepted: int
    burst_submitted: int
    identical_to_serial: bool
    mismatches: list[str] = field(default_factory=list)
    startup: dict = field(default_factory=dict)

    @property
    def overhead_ratio(self) -> float:
        """Concurrent serving wall over serial replay wall for the same
        work — the machine-independent ratio the bench gate tracks."""
        return self.wall_s / self.serial_wall_s if self.serial_wall_s else 0.0


async def _serve_requests(
    fleet,
    registry,
    requests: list[dict],
    *,
    queue_bound: int,
    workers: int | None,
    telemetry=None,
    pace: int = 8,
) -> tuple[dict[str, list[dict]], "object"]:
    """Drive *requests* through a :class:`FleetServer` concurrently.

    Submission order is the stream order (per-tenant arrival order is
    deterministic); every *pace* submissions the driver yields to the
    event loop so workers interleave with admission, like live traffic.
    """
    from ..serving.server import FleetServer

    server = FleetServer(
        fleet,
        registry,
        queue_bound=queue_bound,
        workers=workers,
        telemetry=telemetry,
    )
    await server.start()
    futures = []
    for i, request in enumerate(requests):
        futures.append(server.submit_nowait(request))
        if pace and (i + 1) % pace == 0:
            await asyncio.sleep(0)
    responses = await asyncio.gather(*futures)
    await server.stop(persist=registry.root is not None)
    by_tenant: dict[str, list[dict]] = {t.name: [] for t in fleet}
    for request, response in zip(requests, responses):
        if response["status"] != 200:
            continue
        payload = {
            k: v
            for k, v in response.items()
            if k not in ("status", "op", "id", "app", "wall_ms")
        }
        by_tenant[request["app"]].append(payload)
    return by_tenant, server


async def _overload_burst(
    tenants: int,
    refit_interval: int,
    config: VMConfig,
    *,
    queue_bound: int = 4,
    per_tenant: int = 16,
) -> tuple[int, int, int]:
    """Flood tiny bounded queues without yielding: admission control must
    shed the overflow deterministically (submissions outrun the workers,
    which only run at await points). Returns (submitted, accepted, shed).
    """
    from ..serving.server import FleetServer

    fleet, registry = _build_study_fleet(
        tenants, None, refit_interval, config
    )
    server = FleetServer(fleet, registry, queue_bound=queue_bound, workers=2)
    await server.start()
    futures = []
    for tenant in fleet:
        for i in range(per_tenant):
            futures.append(
                server.submit_nowait(
                    {
                        "op": "run",
                        "app": tenant.name,
                        "cmdline": "-e search -b 512",
                        "seed": i,
                    }
                )
            )
    responses = await asyncio.gather(*futures)
    await server.stop(persist=False)
    shed = sum(1 for r in responses if r["status"] == 429)
    accepted = sum(1 for r in responses if r["status"] == 200)
    return len(futures), accepted, shed


def _compare_outcomes(
    serial: dict[str, list[dict]], served: dict[str, list[dict]]
) -> list[str]:
    """Bit-exact per-tenant comparison; returns mismatch descriptions."""
    mismatches: list[str] = []
    for name in sorted(serial):
        a, b = serial[name], served.get(name, [])
        if len(a) != len(b):
            mismatches.append(
                f"{name}: {len(b)} served response(s) vs {len(a)} serial"
            )
            continue
        for i, (left, right) in enumerate(zip(a, b)):
            if left != right:
                mismatches.append(
                    f"{name}[{i}]: served {right!r} != serial {left!r}"
                )
                break
    return mismatches


def run_fleet_study(
    seed: int = 0,
    requests: int = 1000,
    tenants: int = 4,
    *,
    refit_interval: int = 20,
    queue_bound: int | None = None,
    workers: int | None = None,
    registry_dir: str | None = None,
    telemetry=None,
    config: VMConfig = DEFAULT_CONFIG,
) -> FleetStudyResult:
    """The serving layer's driving scenario, end to end.

    Phases: (1) serial per-tenant baseline replay; (2) the same stream
    through the concurrent :class:`~repro.serving.server.FleetServer`
    (ample queues: nothing sheds, so results must match the baseline
    bit-for-bit); (3) a deliberate overload burst against tiny queues to
    exercise admission control. Hot swaps run throughout (every
    *refit_interval* runs per tenant). A fresh throwaway registry
    directory is used when *registry_dir* is ``None``, so the crash-safe
    persistence path (state saves at swap points, cold-start summary) is
    exercised without making results depend on prior invocations.
    """
    stream = generate_fleet_requests(seed, requests, tenants)

    serial_clock = time.perf_counter()
    serial = run_requests_serial(
        stream,
        tenants=tenants,
        refit_interval=refit_interval,
        config=config,
    )
    serial_wall = time.perf_counter() - serial_clock

    scratch: str | None = None
    if registry_dir is None:
        scratch = tempfile.mkdtemp(prefix="repro-fleet-registry-")
        registry_dir = scratch
    try:
        fleet, registry = _build_study_fleet(
            tenants, registry_dir, refit_interval, config
        )
        startup = registry.startup_summary()
        bound = queue_bound if queue_bound is not None else max(64, requests)
        serve_clock = time.perf_counter()
        served, server = asyncio.run(
            _serve_requests(
                fleet,
                registry,
                stream,
                queue_bound=bound,
                workers=workers,
                telemetry=telemetry,
            )
        )
        wall = time.perf_counter() - serve_clock
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)

    submitted, accepted, shed = asyncio.run(
        _overload_burst(tenants, refit_interval, config)
    )

    mismatches = _compare_outcomes(serial, served)
    latencies = server.stats.latencies_ms
    summary = {
        "p50": _percentile(latencies, 0.50),
        "p95": _percentile(latencies, 0.95),
        "p99": _percentile(latencies, 0.99),
        "mean": sum(latencies) / len(latencies),
    }
    return FleetStudyResult(
        requests=requests,
        tenants=len({r["app"] for r in stream}),
        wall_s=wall,
        serial_wall_s=serial_wall,
        rps=requests / wall if wall else 0.0,
        latency_ms=summary,
        swaps=server.stats.swaps,
        batches=server.stats.batches,
        batched_predicts=server.stats.batched_predicts,
        sheds=shed,
        burst_accepted=accepted,
        burst_submitted=submitted,
        identical_to_serial=not mismatches,
        mismatches=mismatches,
        startup=startup,
    )


def render_fleet(result: FleetStudyResult) -> str:
    rows = [
        [metric, f"{result.latency_ms[metric]:.2f}"]
        for metric in ("p50", "p95", "p99", "mean")
    ]
    table = format_table(["latency", "wall (ms)"], rows)
    verdict = (
        "bit-identical to serial replay"
        if result.identical_to_serial
        else f"MISMATCH: {result.mismatches[:3]}"
    )
    return (
        f"Fleet serving study: {result.requests} request(s) across "
        f"{result.tenants} tenant(s)\n"
        f"{table}\n"
        f"throughput {result.rps:.0f} req/s "
        f"({result.wall_s:.2f}s concurrent vs {result.serial_wall_s:.2f}s "
        f"serial, overhead ratio {result.overhead_ratio:.2f})\n"
        f"{result.swaps} hot swap(s); {result.batches} predict batch(es) "
        f"covering {result.batched_predicts} request(s)\n"
        f"overload burst: {result.sheds} shed / {result.burst_submitted} "
        f"submitted (queue bound respected)\n"
        f"per-tenant results: {verdict}"
    )


# ---------------------------------------------------------------------------
# The sharded fleet study (`repro serve --study --shards N`)
# ---------------------------------------------------------------------------

@dataclass
class ShardStudyResult:
    """Multi-process serving validated against the serial baseline."""

    requests: int
    tenants: int
    #: One row per shard count: shards / wall_s / rps / identical /
    #: mismatches / batched_predicts.
    points: list[dict] = field(default_factory=list)
    #: The kill pass: one worker forcibly killed mid-stream at a
    #: quiesced boundary, respawned from the envelope.
    kill_shards: int = 0
    kill_killed_shard: int = 0
    kill_at: int = 0
    kill_respawns: int = 0
    kill_degradations: int = 0
    kill_identical: bool = False
    kill_mismatches: list[str] = field(default_factory=list)

    @property
    def all_identical(self) -> bool:
        return (
            all(point["identical"] for point in self.points)
            and self.kill_identical
        )


async def _serve_requests_sharded(
    stream: list[dict],
    *,
    shards: int,
    tenants: int,
    refit_interval: int,
    config: VMConfig,
    registry_dir: str,
    queue_bound: int,
    kill_at: int | None = None,
    kill_shard: int | None = None,
    pace: int = 8,
) -> tuple[dict[str, list[dict]], "object"]:
    """Drive *stream* through a :class:`~repro.serving.shards.ShardRouter`.

    With *kill_at*/*kill_shard* set, the stream pauses at that index,
    the fleet quiesces (``sync``: all accepted work including trailing
    auto-swaps fully processed and persisted), the worker is killed and
    its respawn awaited, then the rest of the stream proceeds — the
    deterministic boundary :func:`run_requests_serial` models with its
    ``kill`` parameter.
    """
    from ..serving.shards import ShardRouter

    router = ShardRouter(
        build_tenant_apps,
        (tenants,),
        shards=shards,
        registry_dir=registry_dir,
        config=config,
        refit_interval=refit_interval,
        queue_bound=queue_bound,
    )
    await router.start()
    responses: list[dict] = []
    try:
        cut = len(stream) if kill_at is None else kill_at
        futures = []
        for i, request in enumerate(stream[:cut]):
            futures.append(router.submit_nowait(request))
            if pace and (i + 1) % pace == 0:
                await asyncio.sleep(0)
        responses.extend(await asyncio.gather(*futures))
        if kill_at is not None:
            await router.sync()
            router.kill_shard(kill_shard)
            await router.wait_respawn(kill_shard)
            futures = []
            for i, request in enumerate(stream[cut:]):
                futures.append(router.submit_nowait(request))
                if pace and (i + 1) % pace == 0:
                    await asyncio.sleep(0)
            responses.extend(await asyncio.gather(*futures))
    finally:
        await router.stop()
    by_tenant: dict[str, list[dict]] = {
        name: [] for name in router._tenant_names
    }
    for request, response in zip(stream, responses):
        if response["status"] != 200:
            continue
        payload = {
            k: v
            for k, v in response.items()
            if k not in ("status", "op", "id", "app", "wall_ms")
        }
        by_tenant[request["app"]].append(payload)
    return by_tenant, router


def run_sharded_study(
    seed: int = 0,
    requests: int = 400,
    tenants: int = 4,
    shard_counts: tuple[int, ...] = (1, 2, 4),
    *,
    refit_interval: int = 20,
    config: VMConfig = DEFAULT_CONFIG,
    kill: bool = True,
) -> ShardStudyResult:
    """Validate the sharded multi-process fleet against serial replay.

    Phase 1 — scaling: the same request stream runs at every shard
    count; each pass's per-tenant response streams must be bit-identical
    to one serial baseline (requests/s recorded per point). Phase 2 —
    the kill: at the highest shard count, one worker is killed at a
    quiesced mid-stream boundary and respawned from the envelope; the
    serial baseline models the same death (state rebuilt from the last
    persisted swap), so bit-identity must hold *through* the kill.
    """
    stream = generate_fleet_requests(seed, requests, tenants)
    serial = run_requests_serial(
        stream, tenants=tenants, refit_interval=refit_interval, config=config
    )
    result = ShardStudyResult(
        requests=requests, tenants=len({r["app"] for r in stream})
    )

    for shards in shard_counts:
        scratch = tempfile.mkdtemp(prefix="repro-shard-registry-")
        try:
            clock = time.perf_counter()
            served, router = asyncio.run(
                _serve_requests_sharded(
                    stream,
                    shards=shards,
                    tenants=tenants,
                    refit_interval=refit_interval,
                    config=config,
                    registry_dir=scratch,
                    queue_bound=max(64, requests),
                )
            )
            wall = time.perf_counter() - clock
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
        mismatches = _compare_outcomes(serial, served)
        result.points.append({
            "shards": shards,
            "wall_s": wall,
            "rps": requests / wall if wall else 0.0,
            "identical": not mismatches,
            "mismatches": mismatches,
        })

    if kill:
        shards = max(shard_counts)
        # Kill a shard that owns at least one tenant, at mid-stream.
        from ..serving.shards import shard_of

        names = sorted({r["app"] for r in stream})
        kill_shard = shard_of(names[0], shards)
        kill_at = len(stream) // 2
        serve_scratch = tempfile.mkdtemp(prefix="repro-shard-kill-")
        serial_scratch = tempfile.mkdtemp(prefix="repro-shard-killbase-")
        try:
            served, router = asyncio.run(
                _serve_requests_sharded(
                    stream,
                    shards=shards,
                    tenants=tenants,
                    refit_interval=refit_interval,
                    config=config,
                    registry_dir=serve_scratch,
                    queue_bound=max(64, requests),
                    kill_at=kill_at,
                    kill_shard=kill_shard,
                )
            )
            serial_kill = run_requests_serial(
                stream,
                tenants=tenants,
                refit_interval=refit_interval,
                config=config,
                registry_dir=serial_scratch,
                kill=(kill_at, kill_shard, shards),
            )
        finally:
            shutil.rmtree(serve_scratch, ignore_errors=True)
            shutil.rmtree(serial_scratch, ignore_errors=True)
        mismatches = _compare_outcomes(serial_kill, served)
        result.kill_shards = shards
        result.kill_killed_shard = kill_shard
        result.kill_at = kill_at
        result.kill_respawns = router._shards[kill_shard].respawns
        result.kill_degradations = len(router.report)
        result.kill_identical = not mismatches
        result.kill_mismatches = mismatches
    else:
        result.kill_identical = True
    return result


def render_sharded(result: ShardStudyResult) -> str:
    rows = [
        [
            str(point["shards"]),
            f"{point['rps']:.0f}",
            f"{point['wall_s']:.2f}",
            "yes" if point["identical"] else "NO",
        ]
        for point in result.points
    ]
    table = format_table(
        ["shards", "req/s", "wall (s)", "bit-identical"], rows
    )
    lines = [
        f"Sharded fleet study: {result.requests} request(s) across "
        f"{result.tenants} tenant(s)",
        table,
    ]
    if result.kill_shards:
        verdict = (
            "bit-identical through the kill"
            if result.kill_identical
            else f"MISMATCH: {result.kill_mismatches[:3]}"
        )
        lines.append(
            f"kill pass: shard {result.kill_killed_shard}/"
            f"{result.kill_shards} killed at request {result.kill_at}, "
            f"{result.kill_respawns} respawn(s), "
            f"{result.kill_degradations} degradation record(s); {verdict}"
        )
    return "\n".join(lines)


def fleet_main(
    seed: int = 0, requests: int = 1000, tenants: int = 4, shards: int = 1
) -> int:
    """CLI driver for ``repro serve --study``; exit 1 on any invariant
    violation (result divergence, no sheds under overload, no swaps).
    With ``shards > 1`` the sharded study also runs: bit-identity at
    every shard count up to *shards* plus the kill/respawn pass."""
    result = run_fleet_study(seed=seed, requests=requests, tenants=tenants)
    print(render_fleet(result))
    ok = (
        result.identical_to_serial
        and result.sheds > 0
        and result.swaps > 0
    )
    if shards > 1:
        counts = tuple(n for n in (1, 2, 4) if n <= shards)
        if shards not in counts:
            counts += (shards,)
        sharded = run_sharded_study(
            seed=seed,
            requests=min(requests, 400),
            tenants=tenants,
            shard_counts=counts,
        )
        print(render_sharded(sharded))
        ok = (
            ok
            and sharded.all_identical
            and sharded.kill_respawns >= 1
            and sharded.kill_degradations >= 1
        )
    if not ok:
        print("FLEET STUDY INVARIANT VIOLATION", flush=True)
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    main()
