"""Extension experiment: request-specific optimization for servers (§V).

The paper notes that for long-running servers "different requests often
trigger different behaviors… the concept of Evolve may yield proactive,
request-specific optimizations". This study models that: a server handles
a stream of requests, each request being one execution of the handler
program on a *shared, warm* VM (one JIT code cache and one evolvable
learner across the whole stream — exactly how `EvolvableVM` shares state
across runs). Request "command lines" carry the request's type and
payload size; the learner predicts per-request optimization strategies.

Reported: per-request latency percentiles (p50/p95/p99) under the default
reactive scheme vs. request-specific Evolve, plus tail-latency
improvement — the metric a server operator cares about.

Expected shape: the heavy-request tail (p99, mean) improves strongly —
proactive compilation removes the reactive ramp-up every heavy request
pays — while the smallest requests give a few percent back to per-request
prediction cost (the same small-input overhead effect §V-B.2 reports).
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from ..core.application import Application
from ..core.evolvable import EvolvableVM, run_default
from ..lang.compiler import compile_source
from ..vm.opt.jit import JITCompiler
from ..vm.config import DEFAULT_CONFIG, VMConfig
from ..xicl.parser import parse_spec
from .report import format_table

#: The request handler: three endpoint kernels with different profiles.
SERVER_SOURCE = """
fn parse_request(size) {
  burn(220 + size / 40);
  return size;
}

fn endpoint_search(size) {
  var hits = 0;
  var pos = 0;
  while (pos < size) {
    burn(560);
    hits = hits + 1;
    pos = pos + 256;
  }
  return hits;
}

fn endpoint_render(size) {
  var rows = 0;
  var pos = 0;
  while (pos < size) {
    burn(1400);
    rows = rows + 1;
    pos = pos + 512;
  }
  return rows;
}

fn endpoint_stats(size) {
  burn(300 + size * 2);
  return size;
}

fn format_response(units) {
  burn(90 + units * 3);
  return units;
}

fn main(kind, size) {
  parse_request(size);
  var units = 0;
  if (kind == 0) { units = endpoint_search(size); }
  if (kind == 1) { units = endpoint_render(size); }
  if (kind == 2) { units = endpoint_stats(size); }
  format_response(units);
  return units;
}
"""

SERVER_SPEC = """
option {name=-e:--endpoint; type=STR; attr=VAL; default=search; has_arg=y}
option {name=-b:--bytes; type=NUM; attr=VAL; default=4096; has_arg=y}
"""

_ENDPOINTS = ("search", "render", "stats")


def build_server_app() -> Application:
    program = compile_source(SERVER_SOURCE, name="server")
    spec = parse_spec(SERVER_SPEC)

    def launcher(tokens, fvector, fs):
        return (
            _ENDPOINTS.index(str(fvector.get("-e.VAL", "search"))),
            int(fvector["-b.VAL"]),
        )

    return Application(
        name="server", program=program, spec=spec, launcher=launcher
    )


def generate_request_stream(rng: Random, count: int) -> list[str]:
    """A skewed request mix (search-heavy) with bursty payload sizes."""
    requests = []
    for __ in range(count):
        endpoint = rng.choices(_ENDPOINTS, weights=(5, 2, 3))[0]
        size = rng.choice([512, 2048, 8192, 32768, 131072])
        requests.append(f"-e {endpoint} -b {size}")
    return requests


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


@dataclass
class ServerStudyResult:
    requests: int
    default_latency: dict[str, float]   # p50/p95/p99/mean, virtual ms
    evolve_latency: dict[str, float]
    tail_improvement: float             # p95 speedup
    applied_fraction: float


def run_server_study(
    seed: int = 0, requests: int = 120, config: VMConfig = DEFAULT_CONFIG
) -> ServerStudyResult:
    app = build_server_app()
    stream = generate_request_stream(Random(seed * 13 + 7), requests)

    # Default server: reactive optimizer, warm shared code cache.
    default_jit = JITCompiler(app.program, config)
    default_latencies = [
        run_default(app, request, config=config, jit=default_jit, rng_seed=i)
        .total_cycles
        for i, request in enumerate(stream)
    ]

    # Evolve server: shared learner + code cache across the stream.
    vm = EvolvableVM(app, config=config, cache_translations=True)
    evolve_latencies = []
    applied = 0
    for i, request in enumerate(stream):
        outcome = vm.run(request, rng_seed=i)
        evolve_latencies.append(outcome.total_cycles)
        applied += 1 if outcome.applied_prediction else 0

    def summarize(latencies: list[float]) -> dict[str, float]:
        to_ms = 1000.0 / config.cycles_per_second
        return {
            "p50": _percentile(latencies, 0.50) * to_ms,
            "p95": _percentile(latencies, 0.95) * to_ms,
            "p99": _percentile(latencies, 0.99) * to_ms,
            "mean": sum(latencies) / len(latencies) * to_ms,
        }

    default_summary = summarize(default_latencies)
    evolve_summary = summarize(evolve_latencies)
    return ServerStudyResult(
        requests=requests,
        default_latency=default_summary,
        evolve_latency=evolve_summary,
        tail_improvement=default_summary["p95"] / evolve_summary["p95"],
        applied_fraction=applied / requests,
    )


def render(result: ServerStudyResult) -> str:
    rows = [
        [
            metric,
            f"{result.default_latency[metric]:.2f}",
            f"{result.evolve_latency[metric]:.2f}",
            f"{result.default_latency[metric] / result.evolve_latency[metric]:.3f}",
        ]
        for metric in ("p50", "p95", "p99", "mean")
    ]
    table = format_table(
        ["latency", "default (ms)", "evolve (ms)", "speedup"], rows
    )
    return (
        f"Request-specific optimization study ({result.requests} requests)\n"
        f"{table}\n"
        f"prediction applied on {result.applied_fraction:.0%} of requests; "
        f"p95 tail improved {result.tail_improvement:.3f}x"
    )


def main(seed: int = 0, requests: int = 120) -> str:
    output = render(run_server_study(seed=seed, requests=requests))
    print(output)
    return output


if __name__ == "__main__":  # pragma: no cover
    main()
