"""Sensitivity studies (§V-B.3): thresholds and input order.

Two findings to reproduce:

1. **Confidence threshold**: raising TH_c (0.7 → 0.9) makes Evolve more
   conservative — the speedup range narrows (smaller maximum) while the
   worst case improves (Mtrt's max drops ~1.8→~1.4 and its min rises to
   no-slowdown in the paper).
2. **Input order**: shuffling the input sequence hurts Rep's worst case
   noticeably (−5 % on RayTracer in the paper) but leaves Evolve nearly
   unchanged, because Rep predicts unconditionally from tiny histories
   while the discriminative guard suppresses immature predictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from ..bench.suite import get_benchmark
from ..vm.config import DEFAULT_CONFIG, VMConfig
from .report import format_table
from .runner import run_experiment


@dataclass(frozen=True)
class ThresholdPoint:
    threshold: float
    min_speedup: float
    max_speedup: float
    median_speedup: float
    applied_runs: int


def run_threshold_sweep(
    program: str = "Mtrt",
    thresholds: tuple[float, ...] = (0.5, 0.7, 0.9),
    seed: int = 0,
    runs: int | None = None,
    config: VMConfig = DEFAULT_CONFIG,
) -> list[ThresholdPoint]:
    bench = get_benchmark(program)
    points: list[ThresholdPoint] = []
    for threshold in thresholds:
        result = run_experiment(
            bench,
            seed=seed,
            runs=runs,
            config=config,
            threshold=threshold,
            scenarios=("default", "evolve"),
        )
        speedups = result.speedups("evolve")
        ordered = sorted(speedups)
        points.append(
            ThresholdPoint(
                threshold=threshold,
                min_speedup=ordered[0],
                max_speedup=ordered[-1],
                median_speedup=ordered[len(ordered) // 2],
                applied_runs=sum(
                    1 for out in result.evolve if out.applied_prediction
                ),
            )
        )
    return points


@dataclass(frozen=True)
class OrderSensitivity:
    program: str
    evolve_min_change: float
    rep_min_change: float
    evolve_median_change: float
    rep_median_change: float


def run_order_study(
    program: str = "RayTracer",
    orders: int = 3,
    seed: int = 0,
    runs: int | None = None,
    config: VMConfig = DEFAULT_CONFIG,
) -> OrderSensitivity:
    """Re-run the experiment under several input orders; report how much
    each scenario's worst case and median move across orders."""
    bench = get_benchmark(program)
    evolve_mins, rep_mins, evolve_medians, rep_medians = [], [], [], []
    n_runs = runs if runs is not None else bench.runs
    for order_index in range(orders):
        app, inputs = bench.build(seed=seed)
        rng = Random(seed * 131 + order_index * 7 + 3)
        sequence = [rng.randrange(len(inputs)) for _ in range(n_runs)]
        result = run_experiment(
            bench, seed=seed, runs=n_runs, config=config, sequence=sequence
        )
        for scenario, mins, medians in (
            ("evolve", evolve_mins, evolve_medians),
            ("rep", rep_mins, rep_medians),
        ):
            ordered = sorted(result.speedups(scenario))
            mins.append(ordered[0])
            medians.append(ordered[len(ordered) // 2])
    return OrderSensitivity(
        program=program,
        evolve_min_change=max(evolve_mins) - min(evolve_mins),
        rep_min_change=max(rep_mins) - min(rep_mins),
        evolve_median_change=max(evolve_medians) - min(evolve_medians),
        rep_median_change=max(rep_medians) - min(rep_medians),
    )


def render_thresholds(program: str, points: list[ThresholdPoint]) -> str:
    table = format_table(
        ["TH_c", "min", "median", "max", "applied runs"],
        [
            [
                f"{p.threshold:.1f}",
                f"{p.min_speedup:.3f}",
                f"{p.median_speedup:.3f}",
                f"{p.max_speedup:.3f}",
                p.applied_runs,
            ]
            for p in points
        ],
    )
    return f"Confidence-threshold sweep — {program}\n{table}"


def render_order(study: OrderSensitivity) -> str:
    table = format_table(
        ["scenario", "min-speedup spread", "median-speedup spread"],
        [
            ["evolve", f"{study.evolve_min_change:.3f}", f"{study.evolve_median_change:.3f}"],
            ["rep", f"{study.rep_min_change:.3f}", f"{study.rep_median_change:.3f}"],
        ],
    )
    return f"Input-order sensitivity — {study.program}\n{table}"


def main(seed: int = 0, runs: int | None = None) -> str:
    parts = [
        render_thresholds("Mtrt", run_threshold_sweep(seed=seed, runs=runs)),
        render_order(run_order_study(seed=seed, runs=runs)),
    ]
    output = "\n\n".join(parts)
    print(output)
    return output


if __name__ == "__main__":  # pragma: no cover
    main()
