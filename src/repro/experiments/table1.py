"""Table I reproduction: benchmark population, running times, feature
counts, and Evolve's confidence/accuracy per program.

Columns (as in the paper): program, #inputs, running-time min/max (virtual
seconds under the default VM), input features total/used, and the average
confidence and prediction accuracy of Evolve over the experiment's runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bench.suite import all_benchmarks
from ..vm.config import DEFAULT_CONFIG, VMConfig
from .report import format_table
from .runner import ExperimentResult, run_experiment


@dataclass(frozen=True)
class Table1Row:
    program: str
    suite: str
    n_inputs: int
    time_min: float
    time_max: float
    features_total: int
    features_used: int
    mean_confidence: float
    mean_accuracy: float


def summarize(
    result: ExperimentResult, config: VMConfig | None = None
) -> Table1Row:
    """Fold one benchmark's experiment into its Table I row.

    Model statistics come from the live ``evolve_vm`` when the serial
    runner produced the result, and from the pickle-safe
    ``evolve_summary`` snapshot when the parallel engine did.
    """
    if config is None:
        config = result.evolve_vm.config if result.evolve_vm else DEFAULT_CONFIG
    times = [config.seconds(t) for t in result.default_times()]
    if result.evolve_vm is not None:
        features_total = result.evolve_vm.models.raw_feature_count()
        features_used = len(result.evolve_vm.models.used_features())
    elif result.evolve_summary is not None:
        features_total = result.evolve_summary["features_total"]
        features_used = len(result.evolve_summary["features_used"])
    else:
        features_total = features_used = 0
    accuracies = result.accuracies()
    confidences = result.confidences()
    return Table1Row(
        program=result.benchmark,
        suite="",
        n_inputs=len(result.inputs),
        time_min=min(times),
        time_max=max(times),
        features_total=features_total,
        features_used=features_used,
        mean_confidence=(
            sum(confidences) / len(confidences) if confidences else 0.0
        ),
        mean_accuracy=(
            sum(accuracies) / len(accuracies) if accuracies else 0.0
        ),
    )


def run_table1(
    seed: int = 0,
    runs_override: int | None = None,
    config: VMConfig = DEFAULT_CONFIG,
    benchmarks: list | None = None,
    jobs: int = 1,
) -> list[Table1Row]:
    """Run the full Table I experiment and return one row per benchmark.

    *jobs* > 1 fans the whole sweep (all benchmarks, all scenario cells)
    out through the parallel engine; rows are identical to the serial run.
    """
    selected = benchmarks if benchmarks is not None else all_benchmarks()
    if jobs > 1:
        from .parallel import run_sweep

        report = run_sweep(
            list(selected), jobs=jobs, seed=seed, runs=runs_override, config=config
        )
        results = report.results
    else:
        results = [
            run_experiment(bench, seed=seed, runs=runs_override, config=config)
            for bench in selected
        ]
    rows: list[Table1Row] = []
    for bench, result in zip(selected, results):
        row = summarize(result, config=config)
        rows.append(
            Table1Row(
                program=row.program,
                suite=bench.suite,
                n_inputs=row.n_inputs,
                time_min=row.time_min,
                time_max=row.time_max,
                features_total=row.features_total,
                features_used=row.features_used,
                mean_confidence=row.mean_confidence,
                mean_accuracy=row.mean_accuracy,
            )
        )
    return rows


def render(rows: list[Table1Row]) -> str:
    return format_table(
        [
            "Program",
            "Suite",
            "#Inputs",
            "Time min (s)",
            "Time max (s)",
            "Feat total",
            "Feat used",
            "Conf",
            "Acc",
        ],
        [
            [
                row.program,
                row.suite,
                row.n_inputs,
                f"{row.time_min:.2f}",
                f"{row.time_max:.2f}",
                row.features_total,
                row.features_used,
                f"{row.mean_confidence:.2f}",
                f"{row.mean_accuracy:.2f}",
            ]
            for row in rows
        ],
    )


def main(seed: int = 0, runs_override: int | None = None, jobs: int = 1) -> str:
    output = render(
        run_table1(seed=seed, runs_override=runs_override, jobs=jobs)
    )
    print(output)
    return output


if __name__ == "__main__":  # pragma: no cover
    main()
