"""Extension experiment: input-specific garbage-collector selection (§VI).

Beyond the paper's measured results — its discussion names GC selection as
a further application of the same learning machinery. The study runs an
allocation-heavy service whose inputs vary in allocation volume and
survival ratio (the axis that flips which collector wins), under four
regimes:

- fixed **semispace**, fixed **marksweep** (the static choices),
- **oracle** (per-input ideal, computed posterior), and
- **evolve-gc** (the learned, confidence-guarded selector).

Reported: total GC pause per regime, the selector's accuracy, and the
fraction of the oracle's improvement the learned selector captures.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from ..core.application import Application
from ..core.evolvable import EvolvableVM
from ..lang.compiler import compile_source
from ..vm.heap import GCCostModel, ideal_gc_policy
from ..vm.interpreter import Interpreter
from ..xicl.parser import parse_spec
from .report import format_table

#: A request-processing service: each request allocates a scratch buffer
#: (short-lived) and caches a fraction of results (long-lived, retired at
#: phase ends). Inputs control request count and the cache (survival) rate.
SERVICE_SOURCE = """
fn handle_request(scratch, cached) {
  alloc(scratch);
  burn(400);
  if (cached > 0) { retain(cached); }
  return 0;
}

fn phase_end(cached_total) {
  release(cached_total / 2);
  burn(900);
  return 0;
}

fn main(requests, scratch, cached) {
  var r = 0;
  var held = 0;
  while (r < requests) {
    handle_request(scratch, cached);
    held = held + cached;
    if (r % 64 == 63) { phase_end(held); held = held / 2; }
    r = r + 1;
  }
  return r;
}
"""

SERVICE_SPEC = """
option {name=-r; type=NUM; attr=VAL; default=500; has_arg=y}
option {name=-s; type=NUM; attr=VAL; default=2000; has_arg=y}
option {name=-c; type=NUM; attr=VAL; default=0; has_arg=y}
"""


def build_service_app() -> Application:
    program = compile_source(SERVICE_SOURCE, name="gc-service")
    spec = parse_spec(SERVICE_SPEC)

    def launcher(tokens, fvector, fs):
        return (
            int(fvector["-r.VAL"]),
            int(fvector["-s.VAL"]),
            int(fvector["-c.VAL"]),
        )

    return Application(
        name="gc-service", program=program, spec=spec, launcher=launcher
    )


def generate_inputs(rng: Random, count: int = 14) -> list[str]:
    """Inputs spanning the collector trade-off: low-survival (semispace
    territory) through high-survival (marksweep territory)."""
    inputs = []
    for __ in range(count):
        requests = rng.choice([400, 800, 1600])
        scratch = rng.choice([1500, 3000, 6000])
        cached = rng.choice([0, 0, 1500, 4000, 8000])
        inputs.append(f"-r {requests} -s {scratch} -c {cached}")
    return inputs


@dataclass
class GCStudyResult:
    total_pause: dict[str, float]       # regime -> summed pause cycles
    selection_accuracy: float
    oracle_capture: float               # fraction of oracle's saving captured
    steady_state_capture: float         # same, over the second half of runs
    runs: int


def run_gc_study(
    seed: int = 0, runs: int = 40, gc_model: GCCostModel = GCCostModel()
) -> GCStudyResult:
    app = build_service_app()
    rng = Random(seed * 31 + 5)
    population = generate_inputs(Random(seed))
    sequence = [rng.randrange(len(population)) for _ in range(runs)]

    pause: dict[str, float] = {
        "semispace": 0.0,
        "marksweep": 0.0,
        "oracle": 0.0,
        "evolve-gc": 0.0,
    }
    per_run: dict[str, list[float]] = {regime: [] for regime in pause}

    # Fixed policies and the posterior oracle.
    profiles = {}
    for policy in ("semispace", "marksweep"):
        for run_index, input_index in enumerate(sequence):
            cmdline = population[input_index]
            tokens = app.split_cmdline(cmdline)
            translator = app.make_translator()
            fvector = translator.build_fvector(tokens)
            interp = Interpreter(
                app.program,
                rng_seed=run_index,
                gc_policy=policy,
                gc_model=gc_model,
            )
            profile = interp.run(app.entry_args(tokens, fvector))
            pause[policy] += profile.gc_pause_cycles
            per_run[policy].append(profile.gc_pause_cycles)
            profiles[(policy, run_index)] = profile

    for run_index in range(len(sequence)):
        reference = profiles[("semispace", run_index)]
        ideal = ideal_gc_policy(
            reference.allocated_bytes,
            reference.peak_live_bytes,
            reference.allocation_count,
            gc_model,
        )
        oracle_pause = profiles[(ideal, run_index)].gc_pause_cycles
        pause["oracle"] += oracle_pause
        per_run["oracle"].append(oracle_pause)

    # The learned selector.
    vm = EvolvableVM(app, select_gc=True, gc_model=gc_model)
    for run_index, input_index in enumerate(sequence):
        outcome = vm.run(population[input_index], rng_seed=run_index)
        pause["evolve-gc"] += outcome.profile.gc_pause_cycles
        per_run["evolve-gc"].append(outcome.profile.gc_pause_cycles)

    def capture_over(start: int) -> float:
        best_fixed = min(
            sum(per_run["semispace"][start:]), sum(per_run["marksweep"][start:])
        )
        oracle_saving = best_fixed - sum(per_run["oracle"][start:])
        evolve_saving = best_fixed - sum(per_run["evolve-gc"][start:])
        if oracle_saving <= 0:
            return 1.0
        return max(0.0, min(1.0, evolve_saving / oracle_saving))

    return GCStudyResult(
        total_pause=pause,
        selection_accuracy=vm.gc_selector.selection_accuracy(),
        oracle_capture=capture_over(0),
        steady_state_capture=capture_over(len(sequence) // 2),
        runs=runs,
    )


def render(result: GCStudyResult) -> str:
    rows = [
        [regime, f"{cycles / 1e6:.3f}"]
        for regime, cycles in sorted(
            result.total_pause.items(), key=lambda kv: kv[1]
        )
    ]
    table = format_table(["regime", "total GC pause (Ms cycles)"], rows)
    return (
        f"GC-selection study ({result.runs} runs)\n{table}\n"
        f"selection accuracy: {result.selection_accuracy:.2f}\n"
        f"captured {result.oracle_capture:.0%} of the oracle's improvement "
        f"over the best fixed collector "
        f"({result.steady_state_capture:.0%} after warm-up)"
    )


def main(seed: int = 0, runs: int = 40) -> str:
    output = render(run_gc_study(seed=seed, runs=runs))
    print(output)
    return output


if __name__ == "__main__":  # pragma: no cover
    main()
