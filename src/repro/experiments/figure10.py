"""Figure 10 reproduction: speedup box-plots for all 11 benchmarks.

For each program, the five-number summary (min/25%/median/75%/max) of
per-run speedups under Evolve and under Rep, both normalized by the
default VM — plus the paper's headline aggregates: the input-sensitive
group's median/max advantage and the overall average improvement.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bench.suite import INPUT_SENSITIVE_GROUP, all_benchmarks
from ..vm.config import DEFAULT_CONFIG, VMConfig
from .report import format_table
from .runner import BoxStats, run_experiment


@dataclass
class Figure10Row:
    program: str
    input_sensitive: bool
    evolve: BoxStats
    rep: BoxStats


@dataclass
class Figure10Summary:
    rows: list[Figure10Row]

    def sensitive_rows(self) -> list[Figure10Row]:
        return [row for row in self.rows if row.program in INPUT_SENSITIVE_GROUP]

    def mean_median_speedup(self, scenario: str, rows: list[Figure10Row]) -> float:
        values = [
            (row.evolve if scenario == "evolve" else row.rep).median for row in rows
        ]
        return sum(values) / len(values) if values else 0.0

    def mean_max_speedup(self, scenario: str, rows: list[Figure10Row]) -> float:
        values = [
            (row.evolve if scenario == "evolve" else row.rep).maximum for row in rows
        ]
        return sum(values) / len(values) if values else 0.0

    def better_min_count(self) -> int:
        """Programs where Evolve's worst run beats Rep's worst run — the
        paper's evidence for the discriminative guard."""
        return sum(
            1 for row in self.rows if row.evolve.minimum >= row.rep.minimum
        )


def run_figure10(
    seed: int = 0,
    runs_override: int | None = None,
    config: VMConfig = DEFAULT_CONFIG,
    benchmarks: list | None = None,
) -> Figure10Summary:
    rows: list[Figure10Row] = []
    for bench in benchmarks if benchmarks is not None else all_benchmarks():
        result = run_experiment(bench, seed=seed, runs=runs_override, config=config)
        rows.append(
            Figure10Row(
                program=bench.name,
                input_sensitive=bench.input_sensitive,
                evolve=BoxStats.of(result.speedups("evolve")),
                rep=BoxStats.of(result.speedups("rep")),
            )
        )
    return Figure10Summary(rows)


def render(summary: Figure10Summary) -> str:
    def fmt(stats: BoxStats) -> list[str]:
        return [
            f"{stats.minimum:.3f}",
            f"{stats.q1:.3f}",
            f"{stats.median:.3f}",
            f"{stats.q3:.3f}",
            f"{stats.maximum:.3f}",
        ]

    rows = []
    for row in summary.rows:
        rows.append(
            [row.program + (" *" if row.input_sensitive else "")]
            + fmt(row.evolve)
            + fmt(row.rep)
        )
    table = format_table(
        ["Program"]
        + [f"E.{c}" for c in ("min", "q1", "med", "q3", "max")]
        + [f"R.{c}" for c in ("min", "q1", "med", "q3", "max")],
        rows,
    )
    sensitive = summary.sensitive_rows()
    lines = [
        "Figure 10 — speedup boxplots (Evolve vs Rep, * = input-sensitive group)",
        table,
        "",
        (
            "input-sensitive group: "
            f"median {summary.mean_median_speedup('evolve', sensitive):.3f} vs "
            f"{summary.mean_median_speedup('rep', sensitive):.3f}, "
            f"max {summary.mean_max_speedup('evolve', sensitive):.3f} vs "
            f"{summary.mean_max_speedup('rep', sensitive):.3f}"
        ),
        (
            "all programs: "
            f"median {summary.mean_median_speedup('evolve', summary.rows):.3f} vs "
            f"{summary.mean_median_speedup('rep', summary.rows):.3f}; "
            f"Evolve min >= Rep min in {summary.better_min_count()}/"
            f"{len(summary.rows)} programs"
        ),
    ]
    return "\n".join(lines)


def main(seed: int = 0, runs_override: int | None = None) -> str:
    output = render(run_figure10(seed=seed, runs_override=runs_override))
    print(output)
    return output


if __name__ == "__main__":  # pragma: no cover
    main()
