"""Figure 9 reproduction: speedup vs. default running time (Mtrt, Compress).

Protocol (§V-B.1.a): run a long random-input sequence; for Rep, use the
strategy derived from the histogram of *all* runs (avoiding warm-up
effects); exclude Evolve's initial no-prediction runs; sort the remaining
runs by their default running time and report (time, Evolve speedup,
Rep speedup) triples — the paper's two curve pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bench.suite import get_benchmark
from ..core.evolvable import RepVM
from ..vm.config import DEFAULT_CONFIG, VMConfig
from .report import format_table
from .runner import run_experiment

#: The two programs the paper examines, with their run counts.
FIGURE9_PROGRAMS = {"Mtrt": 92, "Compress": 70}


@dataclass
class Figure9Point:
    default_seconds: float
    evolve_speedup: float
    rep_speedup: float


@dataclass
class Figure9Curve:
    program: str
    points: list[Figure9Point]  # sorted by default running time

    def correlation_buckets(self, buckets: int = 4) -> list[tuple[float, float, float]]:
        """(mean time, mean Evolve speedup, mean Rep speedup) per bucket."""
        out = []
        n = len(self.points)
        for b in range(buckets):
            chunk = self.points[b * n // buckets : (b + 1) * n // buckets]
            if not chunk:
                continue
            out.append(
                (
                    sum(p.default_seconds for p in chunk) / len(chunk),
                    sum(p.evolve_speedup for p in chunk) / len(chunk),
                    sum(p.rep_speedup for p in chunk) / len(chunk),
                )
            )
        return out


def run_figure9(
    program: str,
    seed: int = 0,
    runs: int | None = None,
    config: VMConfig = DEFAULT_CONFIG,
) -> Figure9Curve:
    bench = get_benchmark(program)
    n_runs = runs if runs is not None else FIGURE9_PROGRAMS.get(program, 70)
    result = run_experiment(
        bench, seed=seed, runs=n_runs, config=config, scenarios=("default", "evolve")
    )

    # Rep from the histogram of all runs (no warm-up): replay the same
    # sequence against the frozen, fully-informed repository strategy.
    rep_vm = RepVM(result.app, config=config)
    for outcome in result.default:
        rep_vm.repository.record_run(outcome.profile)
    rep_vm.frozen_strategy = rep_vm.repository.strategy()
    rep_outcomes = [
        rep_vm.run(result.inputs[input_index].cmdline, rng_seed=run_index)
        for run_index, input_index in enumerate(result.sequence)
    ]

    # Exclude Evolve's initial non-predicting runs, as the paper does.
    points: list[Figure9Point] = []
    for default_out, evolve_out, rep_out in zip(
        result.default, result.evolve, rep_outcomes
    ):
        if not evolve_out.applied_prediction:
            continue
        points.append(
            Figure9Point(
                default_seconds=config.seconds(default_out.total_cycles),
                evolve_speedup=default_out.total_cycles / evolve_out.total_cycles,
                rep_speedup=default_out.total_cycles / rep_out.total_cycles,
            )
        )
    points.sort(key=lambda p: p.default_seconds)
    return Figure9Curve(program=program, points=points)


def render(curve: Figure9Curve) -> str:
    rows = [
        [f"{p.default_seconds:.2f}", f"{p.evolve_speedup:.3f}", f"{p.rep_speedup:.3f}"]
        for p in curve.points
    ]
    table = format_table(["default time (s)", "evolve", "rep"], rows)
    bucket_rows = [
        [f"{t:.2f}", f"{ev:.3f}", f"{rp:.3f}"]
        for t, ev, rp in curve.correlation_buckets()
    ]
    buckets = format_table(["bucket mean t (s)", "evolve", "rep"], bucket_rows)
    return (
        f"Figure 9 — {curve.program} (runs sorted by default time)\n"
        f"{table}\n\nQuartile means:\n{buckets}"
    )


def main(seed: int = 0, runs: int | None = None) -> str:
    outputs = []
    for program in FIGURE9_PROGRAMS:
        outputs.append(render(run_figure9(program, seed=seed, runs=runs)))
    output = "\n\n".join(outputs)
    print(output)
    return output


if __name__ == "__main__":  # pragma: no cover
    main()
