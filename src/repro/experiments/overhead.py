"""Overhead analysis (§V-B.2).

The evolvable VM's extra work has three parts: (1) XICL feature
extraction, (2) optimization-level prediction, (3) model construction.
Part (3) runs after the application exits and does not count against run
time; parts (1) and (2) are charged to the virtual clock by the overhead
model. This experiment reports their weight relative to program running
time per benchmark — the paper observes <0.4 % typically, 1.38 % worst
(Bloat with a small input).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bench.suite import all_benchmarks
from ..vm.config import DEFAULT_CONFIG, VMConfig
from .report import format_table
from .runner import run_experiment


@dataclass(frozen=True)
class OverheadRow:
    program: str
    mean_fraction: float
    max_fraction: float
    mean_cycles: float


def run_overhead(
    seed: int = 0,
    runs_override: int | None = None,
    config: VMConfig = DEFAULT_CONFIG,
    benchmarks: list | None = None,
) -> list[OverheadRow]:
    rows: list[OverheadRow] = []
    for bench in benchmarks if benchmarks is not None else all_benchmarks():
        result = run_experiment(
            bench,
            seed=seed,
            runs=runs_override,
            config=config,
            scenarios=("evolve",),
        )
        fractions = [
            out.overhead_cycles / out.total_cycles for out in result.evolve
        ]
        rows.append(
            OverheadRow(
                program=bench.name,
                mean_fraction=sum(fractions) / len(fractions),
                max_fraction=max(fractions),
                mean_cycles=sum(out.overhead_cycles for out in result.evolve)
                / len(result.evolve),
            )
        )
    return rows


def render(rows: list[OverheadRow]) -> str:
    table = format_table(
        ["Program", "mean %", "max %", "mean cycles"],
        [
            [
                row.program,
                f"{row.mean_fraction * 100:.3f}",
                f"{row.max_fraction * 100:.3f}",
                f"{row.mean_cycles:.0f}",
            ]
            for row in rows
        ],
    )
    worst = max(rows, key=lambda r: r.max_fraction)
    return (
        "Overhead of the evolvable machinery (share of run time)\n"
        f"{table}\n"
        f"worst case: {worst.program} at {worst.max_fraction * 100:.2f}%"
    )


def main(seed: int = 0, runs_override: int | None = None) -> str:
    output = render(run_overhead(seed=seed, runs_override=runs_override))
    print(output)
    return output


if __name__ == "__main__":  # pragma: no cover
    main()
