"""Cold-start uplift study: the cross-program prior vs. the cold learner.

The paper's evolvable VM starts every new application cold: until its
own run history accumulates, the confidence gate stays closed and the
first runs are purely reactive. The forge closes that gap with a
cross-program prior trained on thousands of generated programs
(``docs/datasets.md``). This study measures what the prior is worth on
programs it has **never seen**.

Protocol:

1. Train a prior with :func:`~repro.learning.forge.pipeline.run_forge`
   on the *workload* corpus (generated programs under the repetition
   driver, inputs drawn from the ``WORKLOAD_REPS`` ladder — the input
   population whose ideal labels actually span the optimization
   levels).
2. For each evaluation program — drawn from a **different seed
   stream**, so the prior trained on none of them — and each of several
   inputs, run the *first* production run twice from scratch: once on a
   cold :class:`~repro.core.evolvable.EvolvableVM`, once on the same VM
   handed the prior. Both have zero in-app history; the only difference
   is the prior's advice (program statics + this run's entry arguments
   → per-method levels).
3. Score both runs with the paper's §IV-C metric — time-weighted
   prediction accuracy against the run's posterior ideal strategy —
   and report per program, Table-I style, together with the fraction
   of first runs where the prior produced advice and the run-1 virtual
   time ratio (cold / prior, > 1 means the prior made run 1 faster).

The cold arm's "accuracy" is the score of its empty would-be strategy
(every method implicitly baseline) — exactly what the evolvable VM
self-evaluates on a gate-closed run.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path

from ..core.application import Application
from ..core.evolvable import EvolvableVM
from ..learning.forge.pipeline import input_args, run_forge, wrap_workload
from ..learning.forge.prior import CrossProgramPrior
from ..learning.forge.shards import ShardStore
from ..testing.differential import compile_module
from ..testing.generator import generate
from ..xicl.parser import parse_spec
from .report import format_table

#: Seed of the training corpus stream and of the disjoint evaluation
#: stream. Programs are pure functions of (seed, index), so distinct
#: seeds guarantee the evaluation programs are unseen.
TRAIN_SEED = 0
EVAL_SEED = 101

#: Default study sizes. Training pairs are labeled by the forked-run
#: labeler at roughly 1.2 pairs/s on the workload corpus (the heavy
#: end of the reps ladder dominates), so the default corpus takes
#: ~10 minutes serial; ``--runs N`` scales ``train_programs`` down for
#: a quick look, at the cost of a noisier prior.
TRAIN_PROGRAMS = 150
TRAIN_INPUTS = 5
EVAL_PROGRAMS = 10
EVAL_INPUTS = 5


@dataclass(frozen=True)
class ColdStartRow:
    """One evaluation program's first-run comparison."""

    program: str
    methods: int
    inputs: int
    applied_frac: float
    acc_cold: float
    acc_prior: float
    time_ratio: float


def build_workload_app(seed: int, index: int) -> Application:
    """An unseen generated program under the repetition driver, wrapped
    as a runnable :class:`Application` with a numeric XICL spec (one
    ``-aK`` option per entry argument, ``reps`` first)."""
    gp = generate(seed, index)
    program = compile_module(wrap_workload(gp.module))
    arity = 1 + len(gp.args)
    spec = parse_spec(
        "\n".join(
            f"option {{name=-a{k}; type=NUM; attr=VAL; default=0; has_arg=y}}"
            for k in range(arity)
        )
    )

    def launcher(tokens, fvector, fs, _arity=arity):
        return tuple(int(fvector[f"-a{k}.VAL"]) for k in range(_arity))

    return Application(
        name=f"fuzz-{seed}-{index}",
        program=program,
        spec=spec,
        launcher=launcher,
    )


def _first_run(app: Application, cmdline: str, prior=None):
    """One zero-history production run; returns its RunOutcome."""
    vm = EvolvableVM(app, prior=prior)
    return vm.run(cmdline, rng_seed=0)


def _train_prior(
    train_programs: int,
    train_inputs: int,
    seed: int,
    jobs: int,
    cache_dir: str | None,
) -> CrossProgramPrior:
    """The study's prior: forge the workload corpus, then fit.

    With *cache_dir*, shards persist there and an already-forged
    directory skips straight to the fit — the pipeline's byte-identical
    shards (any ``jobs``) make the cached and from-scratch paths
    produce the same prior. Labeling is by far the expensive half
    (~10 min at the default sizes vs. seconds to fit), so the cache is
    what makes re-running the evaluation cheap.
    """
    if cache_dir is not None and any(Path(cache_dir).glob("shard-*.bin")):
        prior = CrossProgramPrior(min_rows=8)
        prior.fit_from_store(ShardStore(cache_dir), jobs=jobs)
        return prior
    with tempfile.TemporaryDirectory() as tmp:
        _stats, prior = run_forge(
            cache_dir if cache_dir is not None else tmp,
            programs=train_programs,
            inputs_per_program=train_inputs,
            seed=seed,
            jobs=jobs,
            input_profile="workload",
        )
    assert prior is not None
    return prior


def run_coldstart(
    seed: int = 0,
    train_programs: int = TRAIN_PROGRAMS,
    train_inputs: int = TRAIN_INPUTS,
    eval_programs: int = EVAL_PROGRAMS,
    eval_inputs: int = EVAL_INPUTS,
    jobs: int = 1,
    cache_dir: str | None = None,
) -> list[ColdStartRow]:
    prior = _train_prior(
        train_programs, train_inputs, TRAIN_SEED + seed, jobs, cache_dir
    )

    rows: list[ColdStartRow] = []
    for index in range(eval_programs):
        app = build_workload_app(EVAL_SEED + seed, index)
        gp = generate(EVAL_SEED + seed, index)
        applied = 0
        acc_cold = acc_prior = 0.0
        cycles_cold = cycles_prior = 0.0
        for k in range(eval_inputs):
            args = input_args(
                EVAL_SEED + seed, index, k, gp.args, profile="workload"
            )
            cmdline = " ".join(
                f"-a{pos} {value}" for pos, value in enumerate(args)
            )
            cold = _first_run(app, cmdline)
            warm = _first_run(app, cmdline, prior=prior)
            applied += bool(warm.applied_prediction)
            acc_cold += cold.accuracy
            acc_prior += warm.accuracy
            cycles_cold += cold.profile.total_cycles + cold.overhead_cycles
            cycles_prior += warm.profile.total_cycles + warm.overhead_cycles
        rows.append(
            ColdStartRow(
                program=app.name,
                methods=len(app.program),
                inputs=eval_inputs,
                applied_frac=applied / eval_inputs,
                acc_cold=acc_cold / eval_inputs,
                acc_prior=acc_prior / eval_inputs,
                time_ratio=cycles_cold / cycles_prior,
            )
        )
    return rows


def render(rows: list[ColdStartRow]) -> str:
    table = format_table(
        ["Program", "Methods", "Inputs", "Applied", "Acc cold",
         "Acc prior", "Uplift", "Time ratio"],
        [
            [
                row.program,
                row.methods,
                row.inputs,
                f"{row.applied_frac:.2f}",
                f"{row.acc_cold:.2f}",
                f"{row.acc_prior:.2f}",
                f"{row.acc_prior - row.acc_cold:+.2f}",
                f"{row.time_ratio:.3f}",
            ]
            for row in rows
        ],
    )
    mean_cold = sum(r.acc_cold for r in rows) / len(rows)
    mean_prior = sum(r.acc_prior for r in rows) / len(rows)
    return (
        table
        + "\n"
        + (
            f"mean run-1 accuracy: cold {mean_cold:.3f} vs prior "
            f"{mean_prior:.3f} ({mean_prior - mean_cold:+.3f})"
        )
    )


def main(
    seed: int = 0,
    programs: int | None = None,
    jobs: int = 1,
    cache_dir: str | None = None,
) -> str:
    rows = run_coldstart(
        seed=seed,
        train_programs=programs if programs else TRAIN_PROGRAMS,
        jobs=jobs,
        cache_dir=cache_dir,
    )
    output = render(rows)
    print(output)
    return output


if __name__ == "__main__":  # pragma: no cover
    main()
