"""CSV export of experiment artifacts, for external plotting.

The harness prints ASCII tables; anyone reproducing the paper's actual
*plots* (scatter curves, boxplots) needs the raw series. These writers
emit one tidy CSV per artifact with stable column names.
"""

from __future__ import annotations

import csv
import io

from .figure8 import Figure8Curves
from .figure9 import Figure9Curve
from .figure10 import Figure10Summary
from .runner import ExperimentResult
from .table1 import Table1Row


def _write(rows: list[dict], fieldnames: list[str]) -> str:
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames, lineterminator="\n")
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def table1_csv(rows: list[Table1Row]) -> str:
    return _write(
        [
            {
                "program": row.program,
                "suite": row.suite,
                "n_inputs": row.n_inputs,
                "time_min_s": f"{row.time_min:.4f}",
                "time_max_s": f"{row.time_max:.4f}",
                "features_total": row.features_total,
                "features_used": row.features_used,
                "confidence": f"{row.mean_confidence:.4f}",
                "accuracy": f"{row.mean_accuracy:.4f}",
            }
            for row in rows
        ],
        [
            "program",
            "suite",
            "n_inputs",
            "time_min_s",
            "time_max_s",
            "features_total",
            "features_used",
            "confidence",
            "accuracy",
        ],
    )


def figure8_csv(curves: Figure8Curves) -> str:
    rows = []
    for index in range(len(curves.evolve_speedup)):
        rows.append(
            {
                "run": index + 1,
                "confidence": f"{curves.confidence[index]:.4f}",
                "accuracy": f"{curves.accuracy[index]:.4f}",
                "evolve_speedup": f"{curves.evolve_speedup[index]:.4f}",
                "rep_speedup": f"{curves.rep_speedup[index]:.4f}",
            }
        )
    return _write(
        rows, ["run", "confidence", "accuracy", "evolve_speedup", "rep_speedup"]
    )


def figure9_csv(curve: Figure9Curve) -> str:
    return _write(
        [
            {
                "default_time_s": f"{point.default_seconds:.4f}",
                "evolve_speedup": f"{point.evolve_speedup:.4f}",
                "rep_speedup": f"{point.rep_speedup:.4f}",
            }
            for point in curve.points
        ],
        ["default_time_s", "evolve_speedup", "rep_speedup"],
    )


def figure10_csv(summary: Figure10Summary) -> str:
    rows = []
    for row in summary.rows:
        for scenario, stats in (("evolve", row.evolve), ("rep", row.rep)):
            rows.append(
                {
                    "program": row.program,
                    "scenario": scenario,
                    "input_sensitive": int(row.input_sensitive),
                    "min": f"{stats.minimum:.4f}",
                    "q1": f"{stats.q1:.4f}",
                    "median": f"{stats.median:.4f}",
                    "q3": f"{stats.q3:.4f}",
                    "max": f"{stats.maximum:.4f}",
                }
            )
    return _write(
        rows,
        ["program", "scenario", "input_sensitive", "min", "q1", "median", "q3", "max"],
    )


def runs_csv(result: ExperimentResult) -> str:
    """Raw per-run series of one experiment (all executed scenarios)."""
    rows = []
    for index in range(len(result.default)):
        row: dict = {
            "run": index + 1,
            "cmdline": result.inputs[result.sequence[index]].cmdline,
            "default_cycles": f"{result.default[index].total_cycles:.1f}",
        }
        if result.rep:
            row["rep_speedup"] = f"{result.speedups('rep')[index]:.4f}"
        if result.evolve:
            row["evolve_speedup"] = f"{result.speedups('evolve')[index]:.4f}"
            outcome = result.evolve[index]
            row["applied"] = int(outcome.applied_prediction)
            row["accuracy"] = (
                f"{outcome.accuracy:.4f}" if outcome.accuracy is not None else ""
            )
        if result.phase:
            row["phase_speedup"] = f"{result.speedups('phase')[index]:.4f}"
        rows.append(row)
    fieldnames = list(rows[0].keys()) if rows else ["run"]
    return _write(rows, fieldnames)
