"""Experiment harness: one module per paper table/figure plus the shared
scenario runner (see DESIGN.md's experiment index, E1–E8), the parallel
experiment engine (:mod:`.parallel`), and run telemetry + result caching
(:mod:`.telemetry`)."""

from .runner import BoxStats, ExperimentResult, run_experiment
from .parallel import (
    CellSpec,
    SweepReport,
    plan_cells,
    run_experiment_parallel,
    run_sweep,
)
from .telemetry import (
    CacheKey,
    ResultCache,
    TelemetryLog,
    read_events,
    validate_event,
)
from .export import (
    figure8_csv,
    figure9_csv,
    figure10_csv,
    runs_csv,
    table1_csv,
)

__all__ = [
    "BoxStats",
    "CacheKey",
    "CellSpec",
    "ExperimentResult",
    "ResultCache",
    "SweepReport",
    "TelemetryLog",
    "figure8_csv",
    "figure9_csv",
    "figure10_csv",
    "plan_cells",
    "read_events",
    "run_experiment",
    "run_experiment_parallel",
    "run_sweep",
    "runs_csv",
    "table1_csv",
    "validate_event",
]
