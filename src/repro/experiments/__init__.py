"""Experiment harness: one module per paper table/figure plus the shared
scenario runner. See DESIGN.md's experiment index (E1–E8)."""

from .runner import BoxStats, ExperimentResult, run_experiment
from .export import (
    figure8_csv,
    figure9_csv,
    figure10_csv,
    runs_csv,
    table1_csv,
)

__all__ = [
    "BoxStats",
    "ExperimentResult",
    "figure8_csv",
    "figure9_csv",
    "figure10_csv",
    "run_experiment",
    "runs_csv",
    "table1_csv",
]
