"""Run telemetry and the on-disk result cache for experiment sweeps.

Two concerns live here, both in service of making large sweeps observable
and cheap to re-run:

1. **Telemetry** — every executed run emits one structured JSONL event
   (benchmark, scenario, run index, input id, RNG seed, wall time, methods
   compiled per level, predictor confidence, prediction hit/miss, …).
   Cache hits and cell completions emit their own event kinds, and the
   serving layer (``docs/serving.md``) adds ``serve_*`` kinds for fleet
   boot, answered requests, sheds, hot swaps, and startup degradations.
   The schema is versioned and documented in ``docs/experiments.md``;
   :func:`validate_event` enforces it (tests validate every line the
   engine writes).

2. **Result cache** — completed scenario×run cells are pickled to disk
   keyed by ``(benchmark, scenario, run range, seed, config digest)``.
   The digest folds in every knob that can change outcomes (run count,
   input sequence, VM config, γ, TH_c, tree parameters), so a sweep
   re-run only executes cells whose inputs changed. Determinism of the
   underlying VM (see ``docs/architecture.md``) is what makes caching
   sound: same key → bit-identical outcomes.

Both are crash-safe (``docs/robustness.md``): cache entries live inside
the checksummed atomic envelope, so a torn write or silent bit flip is a
*miss* (with the corrupt entry quarantined), never a wrong result; the
JSONL log validates per line on read, skipping partial trailing lines,
and degrades to dropping events on I/O errors rather than failing runs.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from ..resilience.degradation import DegradationReport
from ..resilience.envelope import (
    REAL_FS,
    EnvelopeError,
    FileSystem,
    encode_envelope,
    decode_envelope,
)
from ..resilience.quarantine import quarantine_file

#: Bumped whenever an event's required fields change.
TELEMETRY_SCHEMA_VERSION = 1

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

#: Envelope kind tag for result-cache cell entries.
RESULT_KIND = "result-cell"


# ---------------------------------------------------------------------------
# Event construction
# ---------------------------------------------------------------------------

def run_event(
    benchmark: str,
    scenario: str,
    run_index: int,
    input_index: int,
    cmdline: str,
    rng_seed: int,
    outcome,
    wall_s: float | None = None,
) -> dict:
    """The per-run telemetry event for one :class:`RunOutcome`."""
    profile = outcome.profile
    per_level = {
        str(level): count
        for level, count in sorted(profile.levels_compiled().items())
    }
    event = {
        "event": "run",
        "v": TELEMETRY_SCHEMA_VERSION,
        "benchmark": benchmark,
        "scenario": scenario,
        "run": run_index,
        "input": input_index,
        "cmdline": cmdline,
        "seed": rng_seed,
        "wall_s": wall_s,
        "total_cycles": outcome.total_cycles,
        "compile_cycles": profile.compile_cycles,
        "overhead_cycles": outcome.overhead_cycles,
        "methods_per_level": per_level,
        "confidence": outcome.confidence_after,
        "accuracy": outcome.accuracy,
        "applied": bool(outcome.applied_prediction),
    }
    return event


def cell_event(
    kind: str,
    benchmark: str,
    scenario: str,
    start: int,
    stop: int,
    *,
    wall_s: float | None = None,
    cached: bool = False,
) -> dict:
    """A cell-level event: ``kind`` is ``"cell"`` or ``"cache_hit"``."""
    return {
        "event": kind,
        "v": TELEMETRY_SCHEMA_VERSION,
        "benchmark": benchmark,
        "scenario": scenario,
        "start": start,
        "stop": stop,
        "wall_s": wall_s,
        "cached": cached,
    }


def cell_failed_event(
    benchmark: str,
    scenario: str,
    start: int,
    stop: int,
    *,
    reason: str,
    detail: str = "",
    attempts: int = 1,
) -> dict:
    """A cell that exhausted its retries (failed-but-reported, not
    sweep-fatal); ``reason`` is ``"exception"``/``"timeout"``/…"""
    return {
        "event": "cell_failed",
        "v": TELEMETRY_SCHEMA_VERSION,
        "benchmark": benchmark,
        "scenario": scenario,
        "start": start,
        "stop": stop,
        "reason": reason,
        "detail": detail,
        "attempts": attempts,
    }


def drift_event(
    benchmark: str,
    scenario: str,
    run_index: int,
    methods: tuple[str, ...] | list[str],
    confidence: float | None,
) -> dict:
    """A changepoint detection: the per-method Page–Hinkley detectors
    named *methods* as drifted on this run (``docs/robustness.md``,
    "Drift and rollback"). Machine-readable on purpose — the chaos
    harness, the drift study, and serving watchdogs all key off it."""
    return {
        "event": "drift_detected",
        "v": TELEMETRY_SCHEMA_VERSION,
        "benchmark": benchmark,
        "scenario": scenario,
        "run": run_index,
        "methods": sorted(methods),
        "confidence": confidence,
    }


def serve_event(kind: str, **fields) -> dict:
    """A serving-layer event (see ``docs/serving.md``).

    Kinds: ``serve_start`` (fleet boot summary), ``serve_request`` (one
    answered request), ``serve_shed`` (admission control refused a
    request), ``serve_batch`` (one worker hop answered a drained predict
    batch through the batched kernel; ``size`` is the hop's batch size),
    ``serve_swap`` (hot model swap), ``serve_rollback`` (post-swap
    probation failed; the tenant restored its last-good generation —
    ``watchdog`` marks a forced re-train), ``serve_degradation`` (one
    registry :class:`DegradationEvent` mirrored at startup), and
    ``serve_shard`` (sharded-fleet lifecycle: a worker process spawned,
    died, or was respawned with its tenants cold-started from the
    envelope).
    """
    event = {"event": kind, "v": TELEMETRY_SCHEMA_VERSION}
    event.update(fields)
    return event


#: Required fields per event kind, with the types a valid value may take.
#: ``type(None)`` marks a field as nullable.
_RUN_FIELDS: dict[str, tuple[type, ...]] = {
    "event": (str,),
    "v": (int,),
    "benchmark": (str,),
    "scenario": (str,),
    "run": (int,),
    "input": (int,),
    "cmdline": (str,),
    "seed": (int,),
    "wall_s": (int, float, type(None)),
    "total_cycles": (int, float),
    "compile_cycles": (int, float),
    "overhead_cycles": (int, float),
    "methods_per_level": (dict,),
    "confidence": (int, float, type(None)),
    "accuracy": (int, float, type(None)),
    "applied": (bool,),
}

_CELL_FIELDS: dict[str, tuple[type, ...]] = {
    "event": (str,),
    "v": (int,),
    "benchmark": (str,),
    "scenario": (str,),
    "start": (int,),
    "stop": (int,),
    "wall_s": (int, float, type(None)),
    "cached": (bool,),
}

_CELL_FAILED_FIELDS: dict[str, tuple[type, ...]] = {
    "event": (str,),
    "v": (int,),
    "benchmark": (str,),
    "scenario": (str,),
    "start": (int,),
    "stop": (int,),
    "reason": (str,),
    "detail": (str,),
    "attempts": (int,),
}

_DRIFT_FIELDS: dict[str, tuple[type, ...]] = {
    "event": (str,),
    "v": (int,),
    "benchmark": (str,),
    "scenario": (str,),
    "run": (int,),
    "methods": (list,),
    "confidence": (int, float, type(None)),
}

#: Serving-layer event schemas (``docs/serving.md``).
_SERVE_FIELDS: dict[str, dict[str, tuple[type, ...]]] = {
    "serve_start": {
        "event": (str,),
        "v": (int,),
        "tenants": (int,),
        "restored": (int,),
        "cold_started": (int,),
        "quarantined": (int,),
        "degraded": (bool,),
    },
    "serve_request": {
        "event": (str,),
        "v": (int,),
        "app": (str,),
        "op": (str,),
        "status": (int,),
        "wall_ms": (int, float, type(None)),
        "batched": (int,),
    },
    "serve_shed": {
        "event": (str,),
        "v": (int,),
        "app": (str,),
        "op": (str,),
        "queue_depth": (int,),
        "queue_bound": (int,),
    },
    "serve_batch": {
        "event": (str,),
        "v": (int,),
        "app": (str,),
        "size": (int,),
        "queue_depth": (int,),
    },
    "serve_shard": {
        "event": (str,),
        "v": (int,),
        "shard": (int,),
        "action": (str,),
        "tenants": (list,),
        "detail": (str, type(None)),
    },
    "serve_swap": {
        "event": (str,),
        "v": (int,),
        "app": (str,),
        "generation": (int,),
        "runs": (int,),
        "wall_s": (int, float, type(None)),
    },
    "serve_rollback": {
        "event": (str,),
        "v": (int,),
        "app": (str,),
        "from_generation": (int,),
        "to_generation": (int, type(None)),
        "watchdog": (bool,),
    },
    "serve_degradation": {
        "event": (str,),
        "v": (int,),
        "component": (str,),
        "action": (str,),
        "reason": (str,),
        "detail": (str,),
        "path": (str, type(None)),
    },
}


def validate_event(event: dict) -> list[str]:
    """Schema check for one telemetry event; returns a list of problems
    (empty when the event is valid)."""
    problems: list[str] = []
    kind = event.get("event")
    if kind == "run":
        fields = _RUN_FIELDS
    elif kind in ("cell", "cache_hit"):
        fields = _CELL_FIELDS
    elif kind == "cell_failed":
        fields = _CELL_FAILED_FIELDS
    elif kind == "drift_detected":
        fields = _DRIFT_FIELDS
    elif kind in _SERVE_FIELDS:
        fields = _SERVE_FIELDS[kind]
    else:
        return [f"unknown event kind {kind!r}"]
    for name, types in fields.items():
        if name not in event:
            problems.append(f"missing field {name!r}")
        elif not isinstance(event[name], types):
            problems.append(
                f"field {name!r} has type {type(event[name]).__name__}"
            )
    if event.get("v") != TELEMETRY_SCHEMA_VERSION:
        problems.append(f"schema version {event.get('v')!r}")
    if kind == "run":
        for level, count in event.get("methods_per_level", {}).items():
            if not isinstance(level, str) or not isinstance(count, int):
                problems.append("methods_per_level must map str -> int")
                break
    if kind == "drift_detected":
        methods = event.get("methods", [])
        if not methods or not all(isinstance(m, str) for m in methods):
            problems.append("methods must be a non-empty list of str")
    return problems


# ---------------------------------------------------------------------------
# JSONL log
# ---------------------------------------------------------------------------

class TelemetryLog:
    """Append-only JSONL telemetry sink (one event per line).

    Opened lazily on first write so constructing a log never touches the
    filesystem; usable as a context manager. The engine funnels worker
    events through the parent process, so a log has a single writer.

    Writes are best-effort: an I/O failure (full disk) drops the event
    — counted in :attr:`events_dropped` and recorded in *report* —
    rather than aborting the run that produced it. Telemetry is
    observability, never a single point of failure.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fs: FileSystem = REAL_FS,
        report: DegradationReport | None = None,
    ):
        self.path = Path(path)
        self.fs = fs
        self.report = report
        self.events_written = 0
        self.events_dropped = 0

    def append(self, event: dict) -> None:
        line = json.dumps(event, sort_keys=True) + "\n"
        try:
            self.fs.append_text(self.path, line)
        except OSError as exc:
            self.events_dropped += 1
            if self.report is not None:
                self.report.record(
                    "telemetry", "drop-event", type(exc).__name__,
                    detail=str(exc), path=str(self.path),
                )
            return
        self.events_written += 1

    def extend(self, events: Iterable[dict]) -> None:
        for event in events:
            self.append(event)

    def close(self) -> None:
        """Kept for API compatibility; appends close their own handles."""

    def __enter__(self) -> "TelemetryLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events(
    path: str | Path,
    *,
    strict: bool = False,
    report: DegradationReport | None = None,
) -> list[dict]:
    """Load every valid event from a telemetry JSONL file.

    A line that fails to parse — most commonly the *partial trailing
    line* a crashed or out-of-disk writer leaves behind — is skipped
    with a warning (and recorded in *report*) instead of poisoning the
    whole log. Pass ``strict=True`` to re-raise instead.
    """
    events = []
    skipped = 0
    with Path(path).open(encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if strict:
                    raise
                skipped += 1
                if report is not None:
                    report.record(
                        "telemetry", "skip-line", "invalid-json",
                        detail=f"line {lineno}: {exc}", path=str(path),
                    )
    if skipped:
        warnings.warn(
            f"{path}: skipped {skipped} unparseable telemetry line(s) "
            "(partial trailing write?)",
            RuntimeWarning,
            stacklevel=2,
        )
    return events


# ---------------------------------------------------------------------------
# Config digest + result cache
# ---------------------------------------------------------------------------

def config_digest(**parts) -> str:
    """Stable hex digest of everything that can change a cell's outcomes.

    Values are rendered with ``repr`` (all knobs are plain data:
    dataclasses of numbers/dicts, tuples, None), keyed and sorted so the
    digest is insensitive to call-site ordering.
    """
    canonical = ";".join(
        f"{name}={parts[name]!r}" for name in sorted(parts)
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]


@dataclass(frozen=True)
class CacheKey:
    """Identity of one scenario×run-range cell of a sweep."""

    benchmark: str
    scenario: str
    start: int
    stop: int
    seed: int
    digest: str

    def filename(self) -> str:
        tag = hashlib.sha256(
            f"{self.benchmark}|{self.scenario}|{self.start}|{self.stop}"
            f"|{self.seed}|{self.digest}".encode("utf-8")
        ).hexdigest()[:32]
        return f"{self.benchmark}-{self.scenario}-{self.start}-{self.stop}-{tag}.pkl"


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    quarantined: int = 0
    store_failures: int = 0

    def describe(self) -> str:
        extra = ""
        if self.quarantined:
            extra += f", {self.quarantined} quarantined"
        if self.store_failures:
            extra += f", {self.store_failures} store failure(s)"
        return f"{self.hits} hit(s), {self.misses} miss(es){extra}"


class ResultCache:
    """Pickle-per-cell result cache under one root directory.

    Entries are immutable: a key fully determines its outcomes, so a hit
    is always safe to reuse. Entries live inside the crash-safe envelope
    (atomic publish + checksum), so a torn write, bit flip, or stale
    partial file can never surface as a wrong payload: any entry that
    fails verification is quarantined and reported as a **miss** — the
    cell simply re-executes. Store failures (full disk) are likewise
    non-fatal: the sweep continues uncached.
    """

    def __init__(
        self,
        root: str | Path = DEFAULT_CACHE_DIR,
        *,
        fs: FileSystem = REAL_FS,
        report: DegradationReport | None = None,
    ):
        self.root = Path(root)
        self.fs = fs
        self.report = report
        self.stats = CacheStats()

    def _path(self, key: CacheKey) -> Path:
        return self.root / key.filename()

    def get(self, key: CacheKey) -> dict | None:
        """The cached cell payload, or None on a miss."""
        path = self._path(key)
        try:
            blob = self.fs.read_bytes(path)
        except OSError:
            self.stats.misses += 1
            return None
        try:
            payload = pickle.loads(decode_envelope(blob, RESULT_KIND))
        except (
            EnvelopeError,
            pickle.UnpicklingError,
            EOFError,
            AttributeError,
            ValueError,
        ) as exc:
            reason = getattr(exc, "reason", type(exc).__name__)
            quarantine_file(
                path, reason, str(exc),
                component="result-cache", fs=self.fs, report=self.report,
            )
            if self.report is not None:
                self.report.record(
                    "result-cache", "cache-miss", reason, path=str(path)
                )
            self.stats.quarantined += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def put(self, key: CacheKey, payload: dict) -> None:
        path = self._path(key)
        blob = encode_envelope(
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
            RESULT_KIND,
        )
        try:
            self.fs.write_bytes_atomic(path, blob)
        except OSError as exc:
            self.stats.store_failures += 1
            if self.report is not None:
                self.report.record(
                    "result-cache", "store-failed", type(exc).__name__,
                    detail=str(exc), path=str(path),
                )
            return
        self.stats.stores += 1
