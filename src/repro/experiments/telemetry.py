"""Run telemetry and the on-disk result cache for experiment sweeps.

Two concerns live here, both in service of making large sweeps observable
and cheap to re-run:

1. **Telemetry** — every executed run emits one structured JSONL event
   (benchmark, scenario, run index, input id, RNG seed, wall time, methods
   compiled per level, predictor confidence, prediction hit/miss, …).
   Cache hits and cell completions emit their own event kinds. The schema
   is versioned and documented in ``docs/experiments.md``;
   :func:`validate_event` enforces it (tests validate every line the
   engine writes).

2. **Result cache** — completed scenario×run cells are pickled to disk
   keyed by ``(benchmark, scenario, run range, seed, config digest)``.
   The digest folds in every knob that can change outcomes (run count,
   input sequence, VM config, γ, TH_c, tree parameters), so a sweep
   re-run only executes cells whose inputs changed. Determinism of the
   underlying VM (see ``docs/architecture.md``) is what makes caching
   sound: same key → bit-identical outcomes.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable

#: Bumped whenever an event's required fields change.
TELEMETRY_SCHEMA_VERSION = 1

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"


# ---------------------------------------------------------------------------
# Event construction
# ---------------------------------------------------------------------------

def run_event(
    benchmark: str,
    scenario: str,
    run_index: int,
    input_index: int,
    cmdline: str,
    rng_seed: int,
    outcome,
    wall_s: float | None = None,
) -> dict:
    """The per-run telemetry event for one :class:`RunOutcome`."""
    profile = outcome.profile
    per_level = {
        str(level): count
        for level, count in sorted(profile.levels_compiled().items())
    }
    event = {
        "event": "run",
        "v": TELEMETRY_SCHEMA_VERSION,
        "benchmark": benchmark,
        "scenario": scenario,
        "run": run_index,
        "input": input_index,
        "cmdline": cmdline,
        "seed": rng_seed,
        "wall_s": wall_s,
        "total_cycles": outcome.total_cycles,
        "compile_cycles": profile.compile_cycles,
        "overhead_cycles": outcome.overhead_cycles,
        "methods_per_level": per_level,
        "confidence": outcome.confidence_after,
        "accuracy": outcome.accuracy,
        "applied": bool(outcome.applied_prediction),
    }
    return event


def cell_event(
    kind: str,
    benchmark: str,
    scenario: str,
    start: int,
    stop: int,
    *,
    wall_s: float | None = None,
    cached: bool = False,
) -> dict:
    """A cell-level event: ``kind`` is ``"cell"`` or ``"cache_hit"``."""
    return {
        "event": kind,
        "v": TELEMETRY_SCHEMA_VERSION,
        "benchmark": benchmark,
        "scenario": scenario,
        "start": start,
        "stop": stop,
        "wall_s": wall_s,
        "cached": cached,
    }


#: Required fields per event kind, with the types a valid value may take.
#: ``type(None)`` marks a field as nullable.
_RUN_FIELDS: dict[str, tuple[type, ...]] = {
    "event": (str,),
    "v": (int,),
    "benchmark": (str,),
    "scenario": (str,),
    "run": (int,),
    "input": (int,),
    "cmdline": (str,),
    "seed": (int,),
    "wall_s": (int, float, type(None)),
    "total_cycles": (int, float),
    "compile_cycles": (int, float),
    "overhead_cycles": (int, float),
    "methods_per_level": (dict,),
    "confidence": (int, float, type(None)),
    "accuracy": (int, float, type(None)),
    "applied": (bool,),
}

_CELL_FIELDS: dict[str, tuple[type, ...]] = {
    "event": (str,),
    "v": (int,),
    "benchmark": (str,),
    "scenario": (str,),
    "start": (int,),
    "stop": (int,),
    "wall_s": (int, float, type(None)),
    "cached": (bool,),
}


def validate_event(event: dict) -> list[str]:
    """Schema check for one telemetry event; returns a list of problems
    (empty when the event is valid)."""
    problems: list[str] = []
    kind = event.get("event")
    if kind == "run":
        fields = _RUN_FIELDS
    elif kind in ("cell", "cache_hit"):
        fields = _CELL_FIELDS
    else:
        return [f"unknown event kind {kind!r}"]
    for name, types in fields.items():
        if name not in event:
            problems.append(f"missing field {name!r}")
        elif not isinstance(event[name], types):
            problems.append(
                f"field {name!r} has type {type(event[name]).__name__}"
            )
    if event.get("v") != TELEMETRY_SCHEMA_VERSION:
        problems.append(f"schema version {event.get('v')!r}")
    if kind == "run":
        for level, count in event.get("methods_per_level", {}).items():
            if not isinstance(level, str) or not isinstance(count, int):
                problems.append("methods_per_level must map str -> int")
                break
    return problems


# ---------------------------------------------------------------------------
# JSONL log
# ---------------------------------------------------------------------------

class TelemetryLog:
    """Append-only JSONL telemetry sink (one event per line).

    Opened lazily on first write so constructing a log never touches the
    filesystem; usable as a context manager. The engine funnels worker
    events through the parent process, so a log has a single writer.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh: IO[str] | None = None
        self.events_written = 0

    def append(self, event: dict) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self._fh.flush()
        self.events_written += 1

    def extend(self, events: Iterable[dict]) -> None:
        for event in events:
            self.append(event)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TelemetryLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events(path: str | Path) -> list[dict]:
    """Load every event from a telemetry JSONL file."""
    events = []
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


# ---------------------------------------------------------------------------
# Config digest + result cache
# ---------------------------------------------------------------------------

def config_digest(**parts) -> str:
    """Stable hex digest of everything that can change a cell's outcomes.

    Values are rendered with ``repr`` (all knobs are plain data:
    dataclasses of numbers/dicts, tuples, None), keyed and sorted so the
    digest is insensitive to call-site ordering.
    """
    canonical = ";".join(
        f"{name}={parts[name]!r}" for name in sorted(parts)
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]


@dataclass(frozen=True)
class CacheKey:
    """Identity of one scenario×run-range cell of a sweep."""

    benchmark: str
    scenario: str
    start: int
    stop: int
    seed: int
    digest: str

    def filename(self) -> str:
        tag = hashlib.sha256(
            f"{self.benchmark}|{self.scenario}|{self.start}|{self.stop}"
            f"|{self.seed}|{self.digest}".encode("utf-8")
        ).hexdigest()[:32]
        return f"{self.benchmark}-{self.scenario}-{self.start}-{self.stop}-{tag}.pkl"


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0

    def describe(self) -> str:
        return f"{self.hits} hit(s), {self.misses} miss(es)"


class ResultCache:
    """Pickle-per-cell result cache under one root directory.

    Entries are immutable: a key fully determines its outcomes, so a hit
    is always safe to reuse and a corrupt/unreadable entry is treated as
    a miss and rewritten.
    """

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.stats = CacheStats()

    def _path(self, key: CacheKey) -> Path:
        return self.root / key.filename()

    def get(self, key: CacheKey) -> dict | None:
        """The cached cell payload, or None on a miss."""
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                payload = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def put(self, key: CacheKey, payload: dict) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_suffix(".tmp")
        with tmp.open("wb") as fh:
            pickle.dump(payload, fh)
        tmp.replace(path)
        self.stats.stores += 1
