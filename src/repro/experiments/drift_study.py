"""The `repro drift` study: temporal behavior under non-stationary input.

For each shift type in the non-stationary suite
(:data:`~repro.scenarios.drift.DEFAULT_DRIFT_SPECS`) the study runs one
benchmark under the drifted input schedule and reports figure8-style
temporal curves — confidence, prediction accuracy, and Evolve's per-run
speedup over the default VM — annotated with the schedule's ground-truth
shift points and the runs where the VM's own per-method changepoint
detectors fired.

Two summary metrics per shift type (the EXPERIMENTS.md table):

- **recovery latency** — runs from the first post-shift run until the
  global accuracy series climbs back to within a tolerance of its
  pre-shift steady mean (how long mispredictions persist after the world
  changes);
- **post-drift accuracy** — mean accuracy over the steady suffix after
  the last shift (does the learner actually re-converge?).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bench.suite import get_benchmark
from ..scenarios.drift import DEFAULT_DRIFT_SPECS, DriftSpec, shift_points
from ..vm.config import DEFAULT_CONFIG, VMConfig
from .report import format_table, sparkline, steady_state_mean
from .runner import run_experiment

#: Default program for the study: input-sensitive enough that regimes
#: have genuinely different ideal strategies.
DEFAULT_PROGRAM = "Search"

#: Accuracy must come back to (pre-shift mean − tolerance) to count as
#: recovered.
RECOVERY_TOLERANCE = 0.1


@dataclass
class DriftCurves:
    """Temporal observations of one benchmark under one drift spec."""

    program: str
    spec: DriftSpec
    confidence: list[float]
    accuracy: list[float]
    evolve_speedup: list[float]
    #: Ground truth: run indices where the generating schedule shifted.
    shifts: list[int]
    #: Run indices where the VM's per-method detectors fired (with the
    #: methods they named).
    detections: list[tuple[int, tuple[str, ...]]] = field(
        default_factory=list
    )

    def recovery_latency(self) -> int | None:
        """Runs from the first shift until accuracy re-reaches the
        pre-shift level (minus :data:`RECOVERY_TOLERANCE`).

        ``None`` when there is no shift, no pre-shift baseline, or the
        series never recovers within the stream.
        """
        if not self.shifts or not self.accuracy:
            return None
        first = self.shifts[0]
        before = self.accuracy[:first]
        if not before:
            return None
        baseline = sum(before) / len(before)
        target = baseline - RECOVERY_TOLERANCE
        for index in range(first, len(self.accuracy)):
            if self.accuracy[index] >= target:
                return index - first
        return None

    def post_drift_accuracy(self) -> float | None:
        """Mean accuracy over the stream's steady suffix after the last
        shift (``None`` when the last shift leaves no suffix)."""
        if not self.shifts:
            return steady_state_mean(self.accuracy)
        tail = self.accuracy[self.shifts[-1]:]
        if not tail:
            return None
        return sum(tail) / len(tail)


def run_drift_study(
    program: str = DEFAULT_PROGRAM,
    *,
    spec: DriftSpec,
    seed: int = 0,
    runs: int | None = None,
    config: VMConfig = DEFAULT_CONFIG,
    jobs: int = 1,
) -> DriftCurves:
    """One benchmark under one drift spec, with temporal curves."""
    bench = get_benchmark(program)
    result = run_experiment(
        bench,
        seed=seed,
        runs=runs,
        config=config,
        scenarios=("default", "evolve"),
        drift=spec,
        jobs=jobs,
    )
    n_runs = len(result.sequence)
    return DriftCurves(
        program=program,
        spec=spec,
        confidence=result.confidences(),
        accuracy=result.accuracies(),
        evolve_speedup=result.speedups("evolve"),
        shifts=shift_points(spec, n_runs, seed=seed),
        detections=[
            (index, outcome.drift_methods)
            for index, outcome in enumerate(result.evolve)
            if outcome.drift_methods
        ],
    )


def render(curves: DriftCurves) -> str:
    """Figure8-style text plot plus the shift/detection annotations."""
    marks = [" "] * max(len(curves.accuracy), 1)
    for point in curves.shifts:
        if point < len(marks):
            marks[point] = "|"
    for index, _ in curves.detections:
        if index < len(marks):
            marks[index] = "!" if marks[index] == " " else "+"
    latency = curves.recovery_latency()
    post = curves.post_drift_accuracy()
    lines = [
        f"drift {curves.spec.describe()} — {curves.program} "
        f"({len(curves.accuracy)} runs)",
        f"shifts |{''.join(marks)}|  (| = schedule shift, ! = detector, "
        "+ = both)",
        f"conf   |{sparkline(curves.confidence, width=len(marks))}|",
        f"acc    |{sparkline(curves.accuracy, width=len(marks))}|",
        f"evolve |{sparkline(curves.evolve_speedup, width=len(marks))}|",
        f"detections: {len(curves.detections)}  "
        f"recovery latency: {latency if latency is not None else '-'} runs  "
        f"post-drift accuracy: {f'{post:.3f}' if post is not None else '-'}",
    ]
    return "\n".join(lines)


def summary_table(all_curves: list[DriftCurves]) -> str:
    """The per-shift-type recovery/accuracy table (EXPERIMENTS.md)."""
    rows: list[list[object]] = []
    for curves in all_curves:
        latency = curves.recovery_latency()
        post = curves.post_drift_accuracy()
        mean_acc = (
            sum(curves.accuracy) / len(curves.accuracy)
            if curves.accuracy
            else None
        )
        rows.append(
            [
                curves.spec.describe(),
                len(curves.accuracy),
                len(curves.shifts),
                len(curves.detections),
                latency if latency is not None else "-",
                f"{mean_acc:.3f}" if mean_acc is not None else "-",
                f"{post:.3f}" if post is not None else "-",
            ]
        )
    return format_table(
        [
            "Shift",
            "Runs",
            "SchedShifts",
            "Detections",
            "RecoveryRuns",
            "MeanAcc",
            "PostDriftAcc",
        ],
        rows,
    )


def main(
    program: str | None = None,
    seed: int = 0,
    runs: int | None = None,
    jobs: int = 1,
    kinds: tuple[str, ...] | None = None,
) -> str:
    """Run the full suite (all four shift types) and print the report."""
    program = program or DEFAULT_PROGRAM
    specs = (
        DEFAULT_DRIFT_SPECS
        if kinds is None
        else tuple(s for s in DEFAULT_DRIFT_SPECS if s.kind in kinds)
    )
    all_curves = [
        run_drift_study(
            program, spec=spec, seed=seed, runs=runs, jobs=jobs
        )
        for spec in specs
    ]
    parts = [render(curves) for curves in all_curves]
    parts.append(summary_table(all_curves))
    output = "\n\n".join(parts)
    print(output)
    return output


if __name__ == "__main__":  # pragma: no cover
    main()
