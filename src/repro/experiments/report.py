"""Plain-text rendering of experiment outputs (tables and ASCII series).

The harness prints the same rows/series the paper reports; these helpers
keep formatting in one place. :func:`format_sweep` renders the parallel
engine's per-benchmark summary (the ``sweep`` CLI command).
"""

from __future__ import annotations


def format_table(headers: list[str], rows: list[list[object]]) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [
        [str(value) for value in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        line = "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_series(
    title: str, series: dict[str, list[float]], precision: int = 3
) -> str:
    """Render aligned numeric series (one row per run index)."""
    names = list(series)
    length = max((len(values) for values in series.values()), default=0)
    headers = ["run"] + names
    rows: list[list[object]] = []
    for index in range(length):
        row: list[object] = [index + 1]
        for name in names:
            values = series[name]
            row.append(
                f"{values[index]:.{precision}f}" if index < len(values) else ""
            )
        rows.append(row)
    return f"{title}\n{format_table(headers, rows)}"


def format_sweep(results: list) -> str:
    """Per-benchmark summary table of a (parallel) sweep's results.

    *results* are :class:`~repro.experiments.runner.ExperimentResult`
    objects; scenarios that were not executed render as blanks.
    """
    rows: list[list[object]] = []
    for result in results:
        def mean(values: list[float]) -> str:
            return f"{sum(values) / len(values):.3f}" if values else ""

        applied = ""
        confidence = ""
        if result.evolve:
            n_applied = sum(1 for out in result.evolve if out.applied_prediction)
            applied = f"{n_applied}/{len(result.evolve)}"
            confidence = mean(result.confidences())
        rows.append(
            [
                result.benchmark,
                len(result.sequence),
                mean(result.speedups("rep")) if result.rep else "",
                mean(result.speedups("evolve")) if result.evolve else "",
                applied,
                confidence,
            ]
        )
    return format_table(
        ["Program", "Runs", "Rep", "Evolve", "Applied", "Conf"], rows
    )


def detect_changepoints(
    values: list[float],
    *,
    delta: float = 0.02,
    lam: float = 0.35,
    min_samples: int = 5,
) -> list[int]:
    """Offline changepoint scan over a per-run series (both directions).

    Runs one Page–Hinkley detector over the series and one over its
    negation (the online detector only watches *drops*; a report wants
    recoveries too), merging the fire indices. Used by the steady-state
    logic below and by the drift study to align measured behavior with
    a scenario's ground-truth :func:`~repro.scenarios.drift.shift_points`.
    """
    from ..core.confidence import PageHinkley

    down = PageHinkley(delta=delta, lam=lam, min_samples=min_samples)
    up = PageHinkley(delta=delta, lam=lam, min_samples=min_samples)
    points: set[int] = set()
    for index, value in enumerate(values):
        if down.update(value):
            points.add(index)
        if up.update(-value):
            points.add(index)
    return sorted(points)


def steady_state_start(
    values: list[float],
    *,
    delta: float = 0.02,
    lam: float = 0.35,
    min_samples: int = 5,
) -> int:
    """First run index after which the series has no more changepoints.

    Replaces eyeballed warmup cutoffs in summaries: statistics reported
    "at steady state" start after the last detected changepoint (0 when
    the series never shifts — the whole series is steady).
    """
    points = detect_changepoints(
        values, delta=delta, lam=lam, min_samples=min_samples
    )
    return points[-1] + 1 if points else 0


def steady_state_mean(
    values: list[float],
    *,
    delta: float = 0.02,
    lam: float = 0.35,
    min_samples: int = 5,
) -> float | None:
    """Mean of the series restricted to its steady-state suffix.

    ``None`` when no steady suffix exists (the last changepoint is the
    final observation) or the series is empty.
    """
    start = steady_state_start(
        values, delta=delta, lam=lam, min_samples=min_samples
    )
    tail = values[start:]
    if not tail:
        return None
    return sum(tail) / len(tail)


def sparkline(values: list[float], width: int = 60) -> str:
    """A coarse one-line chart for quick visual checks in terminals."""
    if not values:
        return ""
    marks = " .:-=+*#%@"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    step = max(1, len(values) // width)
    sampled = values[::step]
    return "".join(
        marks[min(int((value - lo) / span * (len(marks) - 1)), len(marks) - 1)]
        for value in sampled
    )
