"""Figure 8 reproduction: temporal learning curves for Mtrt and RayTracer.

For each program, the experiment runs a random-input sequence and reports
four series over the run index: Evolve's model confidence, its prediction
accuracy, its per-run speedup over the default VM, and Rep's speedup —
the paper's circles, dots, pluses, and triangles.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bench.suite import get_benchmark
from ..vm.config import DEFAULT_CONFIG, VMConfig
from .report import format_series, sparkline
from .runner import run_experiment

#: The two programs the paper plots.
FIGURE8_PROGRAMS = ("Mtrt", "RayTracer")


@dataclass
class Figure8Curves:
    program: str
    confidence: list[float]
    accuracy: list[float]
    evolve_speedup: list[float]
    rep_speedup: list[float]

    def series(self) -> dict[str, list[float]]:
        return {
            "conf": self.confidence,
            "acc": self.accuracy,
            "evolve": self.evolve_speedup,
            "rep": self.rep_speedup,
        }


def run_figure8(
    program: str,
    seed: int = 0,
    runs: int | None = None,
    config: VMConfig = DEFAULT_CONFIG,
) -> Figure8Curves:
    bench = get_benchmark(program)
    result = run_experiment(bench, seed=seed, runs=runs, config=config)
    return Figure8Curves(
        program=program,
        confidence=result.confidences(),
        accuracy=result.accuracies(),
        evolve_speedup=result.speedups("evolve"),
        rep_speedup=result.speedups("rep"),
    )


def render(curves: Figure8Curves) -> str:
    parts = [
        format_series(f"Figure 8 — {curves.program}", curves.series()),
        "",
        f"conf   |{sparkline(curves.confidence)}|",
        f"acc    |{sparkline(curves.accuracy)}|",
        f"evolve |{sparkline(curves.evolve_speedup)}|",
        f"rep    |{sparkline(curves.rep_speedup)}|",
    ]
    return "\n".join(parts)


def main(seed: int = 0, runs: int | None = None) -> str:
    outputs = []
    for program in FIGURE8_PROGRAMS:
        curves = run_figure8(program, seed=seed, runs=runs)
        outputs.append(render(curves))
    output = "\n\n".join(outputs)
    print(output)
    return output


if __name__ == "__main__":  # pragma: no cover
    main()
