"""Parallel experiment engine: fan §V-B sweeps out across processes.

The serial runner executes one benchmark's scenarios run by run; a full
Figure 8/9/10 + Table I sweep is therefore dominated by wall-clock. This
engine splits a sweep into independent **cells** and executes them on a
``concurrent.futures.ProcessPoolExecutor``, at two grain levels:

- ``grain="benchmark"`` — one job per benchmark (all scenarios, the whole
  run sequence). Coarse, minimal orchestration overhead.
- ``grain="cell"`` (default) — jobs per scenario within a benchmark.
  The **stateful** scenarios (``rep``, ``evolve``: the VM learns across
  the run sequence) each form one cell spanning all runs; the
  **stateless** scenarios (``default``, ``phase``: every run is
  independent) split further into fixed-size run ranges.

Determinism is preserved exactly: every cell derives the same input
sequence from the experiment seed, uses the global run index as the
per-run RNG seed, and builds its program/JIT from scratch (the JIT cache
is pure memoization — compile costs are charged per compile event, so a
fresh cache yields bit-identical clocks). Parallel results are therefore
bitwise-identical to the serial runner's, which a test asserts.

Cells integrate with :mod:`.telemetry`: each executed run emits a
structured event, and completed cells are stored in the on-disk
:class:`~repro.experiments.telemetry.ResultCache` so re-running a sweep
only executes cells whose inputs changed. Chunk boundaries are fixed
(independent of the job count) so cache keys stay stable when ``--jobs``
changes.

On platforms where multiprocessing is unavailable (sandboxes without
semaphore support), the engine falls back to in-process execution with
identical results.

Sweeps are **fault-tolerant** (see ``docs/robustness.md``): a cell whose
worker raises is retried with exponential backoff; a worker that dies
(``BrokenProcessPool``) does not abort the sweep — every lost cell is
re-executed serially in the parent; a cell exceeding ``cell_timeout`` is
marked *failed-but-reported* (a :class:`CellFailure` on the report, a
``cell_failed`` telemetry event) while the rest of the sweep completes.
Retried and re-executed cells are bit-identical to serial execution
because cells are pure functions of their spec. Every recovery decision
lands in the report's :class:`~repro.resilience.degradation.DegradationReport`.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from random import Random

from ..bench.base import Benchmark
from ..bench.suite import get_benchmark
from ..core.evolvable import EvolvableVM, RepVM, run_default
from ..learning.tree import TreeParams
from ..resilience.degradation import DegradationReport
from ..resilience.faults import WorkerFaultPlan
from ..scenarios.drift import DriftSpec, drift_sequence
from ..vm.config import DEFAULT_CONFIG, VMConfig
from ..vm.opt.artifact_cache import JITArtifactCache
from ..vm.opt.jit import JITCompiler
from .runner import ExperimentResult, _run_phase
from .telemetry import (
    CacheKey,
    ResultCache,
    TelemetryLog,
    cell_event,
    cell_failed_event,
    config_digest,
    drift_event,
    run_event,
)

#: Scenarios whose VM carries state across the run sequence; their cells
#: always span every run.
STATEFUL_SCENARIOS = frozenset({"rep", "evolve"})

#: Run-range width for stateless-scenario cells. Fixed (not derived from
#: the job count) so cache keys survive ``--jobs`` changes.
DEFAULT_CHUNK = 8


@dataclass(frozen=True)
class CellSpec:
    """One self-contained unit of sweep work, shippable to a worker."""

    benchmark: str
    scenarios: tuple[str, ...]
    start: int
    stop: int
    seed: int
    sequence: tuple[int, ...]
    config: VMConfig
    gamma: float | None
    threshold: float | None
    tree_params: TreeParams | None
    #: Directory of the shared cross-run JIT artifact cache, or ``None``
    #: to compile from scratch per cell. Deliberately NOT part of the cell
    #: cache key: artifact reuse only changes wall-clock, never results.
    jit_cache_dir: str | None = None
    #: Execution-engine knob forwarded to the scenario drivers
    #: ("auto"/"compiled"/"fast"/"reference"). Like ``jit_cache_dir`` it is
    #: NOT part of the cell cache key: every engine is bit-identical in
    #: virtual-cycle results, so the choice only changes wall-clock.
    engine: str = "auto"

    def cache_key(self) -> CacheKey:
        digest = config_digest(
            sequence=self.sequence,
            config=self.config,
            gamma=self.gamma,
            threshold=self.threshold,
            tree_params=self.tree_params,
        )
        return CacheKey(
            benchmark=self.benchmark,
            scenario="+".join(self.scenarios),
            start=self.start,
            stop=self.stop,
            seed=self.seed,
            digest=digest,
        )


def derive_sequence(
    bench: Benchmark,
    seed: int,
    n_runs: int,
    drift: DriftSpec | None = None,
) -> list[int]:
    """The runner's deterministic input order for (*bench*, *seed*).

    With a *drift* spec the order comes from the non-stationary schedule
    (:func:`~repro.scenarios.drift.drift_sequence`) instead of the
    stationary uniform draw; either way the result is a pure function of
    its arguments, which is what lets cells ship it verbatim.
    """
    _, inputs = bench.build(seed=seed)
    if drift is not None:
        return drift_sequence(drift, len(inputs), n_runs, seed)
    rng = Random(seed * 7919 + 17)
    return [rng.randrange(len(inputs)) for _ in range(n_runs)]


def plan_cells(
    bench: Benchmark,
    *,
    seed: int = 0,
    runs: int | None = None,
    config: VMConfig = DEFAULT_CONFIG,
    scenarios: tuple[str, ...] = ("default", "rep", "evolve"),
    grain: str = "cell",
    chunk: int = DEFAULT_CHUNK,
    gamma: float | None = None,
    threshold: float | None = None,
    tree_params: TreeParams | None = None,
    sequence: list[int] | None = None,
    drift: DriftSpec | None = None,
    jit_cache_dir: str | None = None,
    engine: str = "auto",
) -> list[CellSpec]:
    """Split one benchmark's experiment into independent cell specs."""
    if grain not in ("benchmark", "cell"):
        raise ValueError(f"unknown grain {grain!r}")
    if sequence is not None and drift is not None:
        raise ValueError("pass either an explicit sequence or a drift spec")
    n_runs = runs if runs is not None else bench.runs
    if sequence is None:
        sequence = derive_sequence(bench, seed, n_runs, drift)
    seq = tuple(sequence)

    def spec(scens: tuple[str, ...], start: int, stop: int) -> CellSpec:
        return CellSpec(
            benchmark=bench.name,
            scenarios=scens,
            start=start,
            stop=stop,
            seed=seed,
            sequence=seq,
            config=config,
            gamma=gamma,
            threshold=threshold,
            tree_params=tree_params,
            jit_cache_dir=jit_cache_dir,
            engine=engine,
        )

    if grain == "benchmark":
        return [spec(tuple(scenarios), 0, len(seq))]

    cells: list[CellSpec] = []
    for scenario in scenarios:
        if scenario in STATEFUL_SCENARIOS:
            cells.append(spec((scenario,), 0, len(seq)))
        else:
            for start in range(0, len(seq), max(1, chunk)):
                stop = min(start + max(1, chunk), len(seq))
                cells.append(spec((scenario,), start, stop))
    return cells


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

#: Per-process artifact caches, one per cache directory. Worker processes
#: are reused across cells, so the in-memory layer of each cache warms up
#: over the lifetime of the pool; the disk layer shares artifacts between
#: workers (and across whole sweep invocations).
_ARTIFACT_CACHES: dict[str, JITArtifactCache] = {}


def _artifact_cache_for(cache_dir: str | None) -> JITArtifactCache | None:
    if cache_dir is None:
        return None
    cache = _ARTIFACT_CACHES.get(cache_dir)
    if cache is None:
        cache = JITArtifactCache(cache_dir)
        _ARTIFACT_CACHES[cache_dir] = cache
    return cache


def execute_cell(spec: CellSpec) -> dict:
    """Run one cell and return a pickle-safe payload.

    The payload maps each scenario to its ordered outcomes for the cell's
    run range, carries the per-run telemetry events, and (for ``evolve``)
    a model summary replacing the unpicklable live VM.
    """
    cell_clock = time.perf_counter()
    bench = get_benchmark(spec.benchmark)
    app, inputs = bench.build(seed=spec.seed)
    jit = JITCompiler(
        app.program,
        spec.config,
        artifact_cache=_artifact_cache_for(spec.jit_cache_dir),
    )

    evolve_kwargs: dict = {
        "config": spec.config, "jit": jit, "engine": spec.engine,
    }
    if spec.gamma is not None:
        evolve_kwargs["gamma"] = spec.gamma
    if spec.threshold is not None:
        evolve_kwargs["threshold"] = spec.threshold
    if spec.tree_params is not None:
        evolve_kwargs["tree_params"] = spec.tree_params
    evolve_vm = EvolvableVM(app, **evolve_kwargs) if "evolve" in spec.scenarios else None
    rep_vm = (
        RepVM(app, config=spec.config, jit=jit, engine=spec.engine)
        if "rep" in spec.scenarios
        else None
    )

    outcomes: dict[str, list] = {scenario: [] for scenario in spec.scenarios}
    events: list[dict] = []
    model_summary: dict | None = None

    # Stateful scenarios must replay the prefix [0, start) — planning
    # never splits them, so start is always 0 for rep/evolve cells.
    for run_index in range(spec.start, spec.stop):
        input_index = spec.sequence[run_index]
        cmdline = inputs[input_index].cmdline
        for scenario in spec.scenarios:
            run_clock = time.perf_counter()
            if scenario == "default":
                outcome = run_default(
                    app, cmdline, config=spec.config, jit=jit,
                    rng_seed=run_index, engine=spec.engine,
                )
            elif scenario == "rep":
                outcome = rep_vm.run(cmdline, rng_seed=run_index)
            elif scenario == "evolve":
                outcome = evolve_vm.run(cmdline, rng_seed=run_index)
            elif scenario == "phase":
                outcome = _run_phase(
                    app, cmdline, spec.config, jit, rng_seed=run_index
                )
            else:
                raise ValueError(f"unknown scenario {scenario!r}")
            outcomes[scenario].append(outcome)
            events.append(
                run_event(
                    benchmark=spec.benchmark,
                    scenario=scenario,
                    run_index=run_index,
                    input_index=input_index,
                    cmdline=cmdline,
                    rng_seed=run_index,
                    outcome=outcome,
                    wall_s=time.perf_counter() - run_clock,
                )
            )
            if getattr(outcome, "drift_methods", ()):
                events.append(
                    drift_event(
                        benchmark=spec.benchmark,
                        scenario=scenario,
                        run_index=run_index,
                        methods=outcome.drift_methods,
                        confidence=outcome.confidence_after,
                    )
                )

    if evolve_vm is not None:
        model_summary = dict(evolve_vm.models.summary())
        model_summary["final_confidence"] = evolve_vm.confidence.value

    return {
        "outcomes": outcomes,
        "events": events,
        "model_summary": model_summary,
        "wall_s": time.perf_counter() - cell_clock,
    }


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CellFailure:
    """One cell that could not produce a payload (failed-but-reported).

    The sweep still completes; the failure is visible here, in the
    degradation report, and as a ``cell_failed`` telemetry event.
    """

    benchmark: str
    scenario: str
    start: int
    stop: int
    reason: str  # "exception" | "timeout"
    detail: str
    attempts: int

    def describe(self) -> str:
        return (
            f"{self.benchmark}/{self.scenario}[{self.start}:{self.stop}] "
            f"{self.reason} after {self.attempts} attempt(s): {self.detail}"
        )


@dataclass
class SweepReport:
    """What a parallel sweep produced, beyond the results themselves."""

    results: list[ExperimentResult]
    cells_total: int = 0
    cells_cached: int = 0
    cells_executed: int = 0
    cells_failed: int = 0
    failures: list[CellFailure] = field(default_factory=list)
    degradation: DegradationReport = field(default_factory=DegradationReport)
    wall_s: float = 0.0
    parallel: bool = False

    def describe(self) -> str:
        mode = "parallel" if self.parallel else "inline"
        text = (
            f"{self.cells_total} cell(s): {self.cells_cached} cached, "
            f"{self.cells_executed} executed ({mode}), "
            f"{self.wall_s:.2f}s wall"
        )
        if self.cells_failed:
            text += f", {self.cells_failed} FAILED"
        return text


def _resolve_jobs(jobs: int | None) -> int:
    if jobs is not None:
        return max(1, jobs)
    return max(1, os.cpu_count() or 1)


def _apply_chunk(item: tuple) -> list:
    """Worker for chunked :func:`map_parallel`: one pool hop per chunk."""
    worker, chunk = item
    return [worker(x) for x in chunk]


def map_parallel(
    worker, items: list, jobs: int, *, chunksize: int = 1
) -> tuple[list, bool]:
    """Apply picklable *worker* to every item, preferring a process pool.

    Returns ``(results, parallel)`` with results in item order. Falls back
    to in-process execution when the platform forbids multiprocessing
    (sandboxes without semaphore support), so callers always get results.

    *chunksize* batches consecutive items into one pool submission each,
    amortizing pickle/IPC overhead when items are tiny (the forge's
    per-program chunks already batch, but per-method refit groups are
    single dict entries). Results are flattened back into item order, so
    any chunksize returns the identical result list — only the transport
    granularity changes.

    This is the *plain* fan-out primitive: there are no retries, no
    per-item timeouts, and no fault isolation — an exception in *worker*
    propagates to the caller, for every backend. Sweeps needing retry /
    dead-worker recovery / deadline semantics go through
    :func:`run_sweep`'s resilient cell executor instead (behaviour
    documented in ``docs/robustness.md``). Direct callers today are the
    fuzz harness (iteration chunks) and
    :meth:`~repro.core.model_builder.ModelBuilder.refit_all`, which the
    serving layer uses for offline refits between hot model swaps.
    """
    if chunksize < 1:
        raise ValueError("chunksize must be >= 1")
    if not items:
        return [], False
    if jobs > 1 and len(items) > 1:
        if chunksize > 1:
            chunks = [
                (worker, items[i : i + chunksize])
                for i in range(0, len(items), chunksize)
            ]
            chunked, parallel = map_parallel(_apply_chunk, chunks, jobs)
            return [result for chunk in chunked for result in chunk], parallel
        results: dict[int, object] = {}
        try:
            with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
                futures = {
                    pool.submit(worker, item): index
                    for index, item in enumerate(items)
                }
                not_done = set(futures)
                while not_done:
                    done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                    for future in done:
                        results[futures[future]] = future.result()
            return [results[index] for index in range(len(items))], True
        except (OSError, PermissionError, NotImplementedError):
            pass  # retry everything inline
    return [worker(item) for item in items], False


# ---------------------------------------------------------------------------
# Resilient cell execution
# ---------------------------------------------------------------------------

#: How often the parent re-checks cell deadlines while waiting on the pool.
_POLL_S = 0.05


class InjectedWorkerFault(RuntimeError):
    """The exception a ``raise``-fault worker throws (and, inline, the
    stand-in for a lost worker, which must not kill the parent)."""


def _apply_worker_fault(fault: str | None, hang_s: float) -> None:
    """Worker-side fault behaviors for :class:`WorkerFaultPlan`."""
    if fault is None:
        return
    if fault == "raise":
        raise InjectedWorkerFault("injected worker exception")
    if fault == "exit":
        os._exit(43)  # hard death: breaks the whole process pool
    if fault == "hang":
        time.sleep(hang_s)
        return
    raise ValueError(f"unknown worker fault {fault!r}")


def _cell_worker(item: tuple) -> dict:
    """Pool-side wrapper: optionally misbehave, then run the cell."""
    spec, fault, hang_s = item
    _apply_worker_fault(fault, hang_s)
    return execute_cell(spec)


def _cell_tag(spec: CellSpec) -> str:
    return f"{spec.benchmark}/{'+'.join(spec.scenarios)}[{spec.start}:{spec.stop}]"


def _failure(spec: CellSpec, reason: str, detail: str, attempts: int) -> CellFailure:
    return CellFailure(
        benchmark=spec.benchmark,
        scenario="+".join(spec.scenarios),
        start=spec.start,
        stop=spec.stop,
        reason=reason,
        detail=detail,
        attempts=attempts,
    )


def _shutdown_pool(pool: ProcessPoolExecutor, healthy: bool) -> None:
    if healthy:
        pool.shutdown(wait=True)
        return
    # A worker is hung or dead: waiting would block the sweep (or the
    # interpreter at exit), so terminate the workers outright. The pool
    # is discarded either way.
    try:
        for proc in list(getattr(pool, "_processes", {}).values()):
            proc.terminate()
    except Exception:
        pass
    pool.shutdown(wait=False, cancel_futures=True)


def _pool_phase(
    pool: ProcessPoolExecutor,
    pending: list[tuple[int, CellSpec]],
    payloads: dict[int, dict],
    failures: dict[int, CellFailure],
    attempts: dict[int, int],
    *,
    retries: int,
    cell_timeout: float | None,
    backoff_s: float,
    fault_plan: WorkerFaultPlan | None,
    report: DegradationReport,
) -> list[tuple[int, CellSpec]]:
    """Run cells on the pool; returns cells that must re-run serially.

    The pool stays in charge while it is healthy. The first sign of
    pool-level disruption — a dead worker (``BrokenProcessPool``) or a
    cell blowing its deadline (the stuck worker poisons a pool slot for
    the rest of the sweep) — flips ``healthy``; everything unresolved is
    handed back for serial re-execution in the parent. A timed-out cell
    itself is marked failed-but-reported, not retried.
    """
    futures: dict = {}
    deadlines: dict = {}
    healthy = True
    lost: list[tuple[int, CellSpec]] = []

    def submit(index: int, spec: CellSpec):
        fault = (
            fault_plan.fault_for(index, attempts[index])
            if fault_plan is not None
            else None
        )
        hang_s = fault_plan.hang_s if fault_plan is not None else 0.0
        attempts[index] += 1
        future = pool.submit(_cell_worker, (spec, fault, hang_s))
        futures[future] = (index, spec)
        if cell_timeout is not None:
            deadlines[future] = time.monotonic() + cell_timeout
        return future

    try:
        not_done = {submit(index, spec) for index, spec in pending}
        poll = _POLL_S if cell_timeout is not None else None
        while not_done and healthy:
            done, not_done = wait(
                not_done, timeout=poll, return_when=FIRST_COMPLETED
            )
            for future in done:
                index, spec = futures.pop(future)
                try:
                    payloads[index] = future.result()
                except BrokenProcessPool:
                    # The worker died mid-cell. Nothing wrong with the
                    # cell itself: re-execute it (and everything else
                    # still outstanding) serially instead of aborting.
                    healthy = False
                    lost.append((index, spec))
                    report.record(
                        "sweep", "serial-reexec", "worker-lost",
                        detail=_cell_tag(spec),
                    )
                except Exception as exc:
                    if attempts[index] <= retries:
                        report.record(
                            "sweep", "retry", type(exc).__name__,
                            detail=_cell_tag(spec),
                        )
                        time.sleep(backoff_s * (2 ** (attempts[index] - 1)))
                        not_done.add(submit(index, spec))
                    else:
                        failures[index] = _failure(
                            spec, "exception",
                            f"{type(exc).__name__}: {exc}", attempts[index],
                        )
                        report.record(
                            "sweep", "cell-failed", "exception",
                            detail=_cell_tag(spec),
                        )
            if healthy and cell_timeout is not None:
                now = time.monotonic()
                for future in list(not_done):
                    if deadlines.get(future, float("inf")) <= now:
                        index, spec = futures.pop(future)
                        not_done.discard(future)
                        future.cancel()
                        failures[index] = _failure(
                            spec, "timeout",
                            f"exceeded {cell_timeout:.2f}s cell timeout",
                            attempts[index],
                        )
                        report.record(
                            "sweep", "timeout", "cell-deadline",
                            detail=_cell_tag(spec),
                        )
                        healthy = False
        # Whatever is still outstanding re-runs serially in the parent.
        for future in not_done:
            if future in futures:
                index, spec = futures.pop(future)
                lost.append((index, spec))
                report.record(
                    "sweep", "serial-reexec", "pool-drain",
                    detail=_cell_tag(spec),
                )
    finally:
        _shutdown_pool(pool, healthy)
    return lost


def _serial_phase(
    queue: list[tuple[int, CellSpec]],
    payloads: dict[int, dict],
    failures: dict[int, CellFailure],
    attempts: dict[int, int],
    *,
    retries: int,
    backoff_s: float,
    fault_plan: WorkerFaultPlan | None,
    report: DegradationReport,
) -> None:
    """In-process execution with the same retry contract as the pool.

    Inline, a ``exit``/``hang`` fault cannot be allowed to kill or stall
    the parent, so both degrade to :class:`InjectedWorkerFault` — the
    retry path they exercise is the same.
    """
    for index, spec in queue:
        while True:
            fault = (
                fault_plan.fault_for(index, attempts[index])
                if fault_plan is not None
                else None
            )
            if fault in ("exit", "hang"):
                fault = "raise"
            attempts[index] += 1
            try:
                _apply_worker_fault(fault, 0.0)
                payloads[index] = execute_cell(spec)
                break
            except Exception as exc:
                if attempts[index] <= retries:
                    report.record(
                        "sweep", "retry", type(exc).__name__,
                        detail=_cell_tag(spec),
                    )
                    time.sleep(backoff_s * (2 ** (attempts[index] - 1)))
                    continue
                failures[index] = _failure(
                    spec, "exception",
                    f"{type(exc).__name__}: {exc}", attempts[index],
                )
                report.record(
                    "sweep", "cell-failed", "exception", detail=_cell_tag(spec)
                )
                break


def execute_cells(
    pending: list[tuple[int, CellSpec]],
    jobs: int,
    *,
    retries: int = 1,
    cell_timeout: float | None = None,
    backoff_s: float = 0.05,
    fault_plan: WorkerFaultPlan | None = None,
    report: DegradationReport | None = None,
) -> tuple[dict[int, dict], dict[int, CellFailure], bool]:
    """Run the uncached cells with retries, pool recovery, and timeouts.

    Returns ``(payloads, failures, parallel)``; every pending index ends
    up in exactly one of the two dicts — a sweep never aborts on a bad
    cell or a dead worker.
    """
    if report is None:
        report = DegradationReport()
    payloads: dict[int, dict] = {}
    failures: dict[int, CellFailure] = {}
    attempts: dict[int, int] = {index: 0 for index, _ in pending}
    parallel = False
    serial_queue = list(pending)

    if jobs > 1 and len(pending) > 1:
        try:
            pool = ProcessPoolExecutor(max_workers=min(jobs, len(pending)))
        except (OSError, PermissionError, NotImplementedError):
            pool = None
        if pool is not None:
            parallel = True
            serial_queue = _pool_phase(
                pool, pending, payloads, failures, attempts,
                retries=retries, cell_timeout=cell_timeout,
                backoff_s=backoff_s, fault_plan=fault_plan, report=report,
            )

    _serial_phase(
        serial_queue, payloads, failures, attempts,
        retries=retries, backoff_s=backoff_s, fault_plan=fault_plan,
        report=report,
    )
    return payloads, failures, parallel


def run_sweep(
    benchmarks: list[Benchmark],
    *,
    jobs: int | None = None,
    seed: int = 0,
    runs: int | None = None,
    config: VMConfig = DEFAULT_CONFIG,
    scenarios: tuple[str, ...] = ("default", "rep", "evolve"),
    grain: str = "cell",
    chunk: int = DEFAULT_CHUNK,
    gamma: float | None = None,
    threshold: float | None = None,
    tree_params: TreeParams | None = None,
    drift: DriftSpec | None = None,
    telemetry: TelemetryLog | None = None,
    cache: ResultCache | None = None,
    jit_cache_dir: str | None = None,
    engine: str = "auto",
    retries: int = 1,
    cell_timeout: float | None = None,
    backoff_s: float = 0.05,
    fault_plan: WorkerFaultPlan | None = None,
    report: DegradationReport | None = None,
) -> SweepReport:
    """Run the §V-B protocol for many benchmarks, fanned out over cells.

    Returns a :class:`SweepReport` whose ``results`` list parallels
    *benchmarks*; each :class:`ExperimentResult` is assembled in run order
    and is bitwise-identical to what the serial runner produces for the
    same arguments. ``evolve_vm``/``rep_vm`` are ``None`` (the live VMs
    stay in the workers); ``evolve_summary`` carries the model snapshot.

    Failure handling: a raising cell is retried up to *retries* times
    with exponential backoff (``backoff_s`` base); dead workers trigger
    serial re-execution of lost cells; a cell over *cell_timeout*
    seconds is marked failed-but-reported. *fault_plan* injects worker
    faults (testing/chaos only). Recovery decisions accumulate in
    *report* (a fresh :class:`DegradationReport` when ``None``), which
    the returned :class:`SweepReport` carries.
    """
    sweep_clock = time.perf_counter()
    if report is None:
        report = DegradationReport()
    plans: list[tuple[Benchmark, list[CellSpec]]] = []
    all_cells: list[CellSpec] = []
    for bench in benchmarks:
        cells = plan_cells(
            bench,
            seed=seed,
            runs=runs,
            config=config,
            scenarios=tuple(scenarios),
            grain=grain,
            chunk=chunk,
            gamma=gamma,
            threshold=threshold,
            tree_params=tree_params,
            drift=drift,
            jit_cache_dir=jit_cache_dir,
            engine=engine,
        )
        plans.append((bench, cells))
        all_cells.extend(cells)

    payloads: dict[int, dict] = {}
    pending: list[tuple[int, CellSpec]] = []
    cached = 0
    for index, spec in enumerate(all_cells):
        payload = cache.get(spec.cache_key()) if cache is not None else None
        if payload is not None:
            payloads[index] = payload
            cached += 1
            if telemetry is not None:
                telemetry.append(
                    cell_event(
                        "cache_hit",
                        spec.benchmark,
                        "+".join(spec.scenarios),
                        spec.start,
                        spec.stop,
                        cached=True,
                    )
                )
        else:
            pending.append((index, spec))

    executed, cell_failures, parallel = execute_cells(
        pending,
        _resolve_jobs(jobs),
        retries=retries,
        cell_timeout=cell_timeout,
        backoff_s=backoff_s,
        fault_plan=fault_plan,
        report=report,
    )
    for index, payload in executed.items():
        spec = all_cells[index]
        payloads[index] = payload
        if cache is not None:
            cache.put(spec.cache_key(), payload)
        if telemetry is not None:
            telemetry.extend(payload["events"])
            telemetry.append(
                cell_event(
                    "cell",
                    spec.benchmark,
                    "+".join(spec.scenarios),
                    spec.start,
                    spec.stop,
                    wall_s=payload["wall_s"],
                )
            )
    failures = [cell_failures[index] for index in sorted(cell_failures)]
    if telemetry is not None:
        for failure in failures:
            telemetry.append(
                cell_failed_event(
                    failure.benchmark,
                    failure.scenario,
                    failure.start,
                    failure.stop,
                    reason=failure.reason,
                    detail=failure.detail,
                    attempts=failure.attempts,
                )
            )

    results: list[ExperimentResult] = []
    cursor = 0
    for bench, cells in plans:
        app, inputs = bench.build(seed=seed)
        sequence = list(cells[0].sequence)
        result = ExperimentResult(
            benchmark=bench.name,
            app=app,
            inputs=inputs,
            sequence=sequence,
            drift_spec=drift,
        )
        by_scenario: dict[str, list[tuple[int, list]]] = {}
        for offset, spec in enumerate(cells):
            payload = payloads.get(cursor + offset)
            if payload is None:
                continue  # failed cell: reported, not sweep-fatal
            for scenario, outs in payload["outcomes"].items():
                by_scenario.setdefault(scenario, []).append((spec.start, outs))
            if payload.get("model_summary") is not None:
                result.evolve_summary = payload["model_summary"]
        for scenario, pieces in by_scenario.items():
            ordered: list = []
            for _, outs in sorted(pieces, key=lambda item: item[0]):
                ordered.extend(outs)
            setattr(result, scenario, ordered)
        cursor += len(cells)
        results.append(result)

    return SweepReport(
        results=results,
        cells_total=len(all_cells),
        cells_cached=cached,
        cells_executed=len(pending) - len(failures),
        cells_failed=len(failures),
        failures=failures,
        degradation=report,
        wall_s=time.perf_counter() - sweep_clock,
        parallel=parallel,
    )


def run_experiment_parallel(
    bench: Benchmark,
    *,
    jobs: int | None = None,
    seed: int = 0,
    runs: int | None = None,
    config: VMConfig = DEFAULT_CONFIG,
    scenarios: tuple[str, ...] = ("default", "rep", "evolve"),
    grain: str = "cell",
    gamma: float | None = None,
    threshold: float | None = None,
    tree_params: TreeParams | None = None,
    drift: DriftSpec | None = None,
    telemetry: TelemetryLog | None = None,
    cache: ResultCache | None = None,
    jit_cache_dir: str | None = None,
    engine: str = "auto",
) -> ExperimentResult:
    """One benchmark through the parallel engine (the runner's ``jobs=N``
    path); results are identical to :func:`~.runner.run_experiment`.

    Delegates to :func:`run_sweep` and therefore inherits its fault
    tolerance at the default settings: a raising cell is retried once
    with backoff, cells lost to dead workers are re-executed serially,
    and there is no cell deadline unless a caller opts in via
    ``run_sweep(..., cell_timeout=...)``. See ``docs/robustness.md`` for
    the recovery ladder and how degradations are reported.
    """
    report = run_sweep(
        [bench],
        jobs=jobs,
        seed=seed,
        runs=runs,
        config=config,
        scenarios=scenarios,
        grain=grain,
        gamma=gamma,
        threshold=threshold,
        tree_params=tree_params,
        drift=drift,
        telemetry=telemetry,
        cache=cache,
        jit_cache_dir=jit_cache_dir,
        engine=engine,
    )
    return report.results[0]
