"""Parallel experiment engine: fan §V-B sweeps out across processes.

The serial runner executes one benchmark's scenarios run by run; a full
Figure 8/9/10 + Table I sweep is therefore dominated by wall-clock. This
engine splits a sweep into independent **cells** and executes them on a
``concurrent.futures.ProcessPoolExecutor``, at two grain levels:

- ``grain="benchmark"`` — one job per benchmark (all scenarios, the whole
  run sequence). Coarse, minimal orchestration overhead.
- ``grain="cell"`` (default) — jobs per scenario within a benchmark.
  The **stateful** scenarios (``rep``, ``evolve``: the VM learns across
  the run sequence) each form one cell spanning all runs; the
  **stateless** scenarios (``default``, ``phase``: every run is
  independent) split further into fixed-size run ranges.

Determinism is preserved exactly: every cell derives the same input
sequence from the experiment seed, uses the global run index as the
per-run RNG seed, and builds its program/JIT from scratch (the JIT cache
is pure memoization — compile costs are charged per compile event, so a
fresh cache yields bit-identical clocks). Parallel results are therefore
bitwise-identical to the serial runner's, which a test asserts.

Cells integrate with :mod:`.telemetry`: each executed run emits a
structured event, and completed cells are stored in the on-disk
:class:`~repro.experiments.telemetry.ResultCache` so re-running a sweep
only executes cells whose inputs changed. Chunk boundaries are fixed
(independent of the job count) so cache keys stay stable when ``--jobs``
changes.

On platforms where multiprocessing is unavailable (sandboxes without
semaphore support), the engine falls back to in-process execution with
identical results.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from random import Random

from ..bench.base import Benchmark
from ..bench.suite import get_benchmark
from ..core.evolvable import EvolvableVM, RepVM, run_default
from ..learning.tree import TreeParams
from ..vm.config import DEFAULT_CONFIG, VMConfig
from ..vm.opt.artifact_cache import JITArtifactCache
from ..vm.opt.jit import JITCompiler
from .runner import ExperimentResult, _run_phase
from .telemetry import (
    CacheKey,
    ResultCache,
    TelemetryLog,
    cell_event,
    config_digest,
    run_event,
)

#: Scenarios whose VM carries state across the run sequence; their cells
#: always span every run.
STATEFUL_SCENARIOS = frozenset({"rep", "evolve"})

#: Run-range width for stateless-scenario cells. Fixed (not derived from
#: the job count) so cache keys survive ``--jobs`` changes.
DEFAULT_CHUNK = 8


@dataclass(frozen=True)
class CellSpec:
    """One self-contained unit of sweep work, shippable to a worker."""

    benchmark: str
    scenarios: tuple[str, ...]
    start: int
    stop: int
    seed: int
    sequence: tuple[int, ...]
    config: VMConfig
    gamma: float | None
    threshold: float | None
    tree_params: TreeParams | None
    #: Directory of the shared cross-run JIT artifact cache, or ``None``
    #: to compile from scratch per cell. Deliberately NOT part of the cell
    #: cache key: artifact reuse only changes wall-clock, never results.
    jit_cache_dir: str | None = None

    def cache_key(self) -> CacheKey:
        digest = config_digest(
            sequence=self.sequence,
            config=self.config,
            gamma=self.gamma,
            threshold=self.threshold,
            tree_params=self.tree_params,
        )
        return CacheKey(
            benchmark=self.benchmark,
            scenario="+".join(self.scenarios),
            start=self.start,
            stop=self.stop,
            seed=self.seed,
            digest=digest,
        )


def derive_sequence(bench: Benchmark, seed: int, n_runs: int) -> list[int]:
    """The runner's deterministic input order for (*bench*, *seed*)."""
    _, inputs = bench.build(seed=seed)
    rng = Random(seed * 7919 + 17)
    return [rng.randrange(len(inputs)) for _ in range(n_runs)]


def plan_cells(
    bench: Benchmark,
    *,
    seed: int = 0,
    runs: int | None = None,
    config: VMConfig = DEFAULT_CONFIG,
    scenarios: tuple[str, ...] = ("default", "rep", "evolve"),
    grain: str = "cell",
    chunk: int = DEFAULT_CHUNK,
    gamma: float | None = None,
    threshold: float | None = None,
    tree_params: TreeParams | None = None,
    sequence: list[int] | None = None,
    jit_cache_dir: str | None = None,
) -> list[CellSpec]:
    """Split one benchmark's experiment into independent cell specs."""
    if grain not in ("benchmark", "cell"):
        raise ValueError(f"unknown grain {grain!r}")
    n_runs = runs if runs is not None else bench.runs
    if sequence is None:
        sequence = derive_sequence(bench, seed, n_runs)
    seq = tuple(sequence)

    def spec(scens: tuple[str, ...], start: int, stop: int) -> CellSpec:
        return CellSpec(
            benchmark=bench.name,
            scenarios=scens,
            start=start,
            stop=stop,
            seed=seed,
            sequence=seq,
            config=config,
            gamma=gamma,
            threshold=threshold,
            tree_params=tree_params,
            jit_cache_dir=jit_cache_dir,
        )

    if grain == "benchmark":
        return [spec(tuple(scenarios), 0, len(seq))]

    cells: list[CellSpec] = []
    for scenario in scenarios:
        if scenario in STATEFUL_SCENARIOS:
            cells.append(spec((scenario,), 0, len(seq)))
        else:
            for start in range(0, len(seq), max(1, chunk)):
                stop = min(start + max(1, chunk), len(seq))
                cells.append(spec((scenario,), start, stop))
    return cells


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

#: Per-process artifact caches, one per cache directory. Worker processes
#: are reused across cells, so the in-memory layer of each cache warms up
#: over the lifetime of the pool; the disk layer shares artifacts between
#: workers (and across whole sweep invocations).
_ARTIFACT_CACHES: dict[str, JITArtifactCache] = {}


def _artifact_cache_for(cache_dir: str | None) -> JITArtifactCache | None:
    if cache_dir is None:
        return None
    cache = _ARTIFACT_CACHES.get(cache_dir)
    if cache is None:
        cache = JITArtifactCache(cache_dir)
        _ARTIFACT_CACHES[cache_dir] = cache
    return cache


def execute_cell(spec: CellSpec) -> dict:
    """Run one cell and return a pickle-safe payload.

    The payload maps each scenario to its ordered outcomes for the cell's
    run range, carries the per-run telemetry events, and (for ``evolve``)
    a model summary replacing the unpicklable live VM.
    """
    cell_clock = time.perf_counter()
    bench = get_benchmark(spec.benchmark)
    app, inputs = bench.build(seed=spec.seed)
    jit = JITCompiler(
        app.program,
        spec.config,
        artifact_cache=_artifact_cache_for(spec.jit_cache_dir),
    )

    evolve_kwargs: dict = {"config": spec.config, "jit": jit}
    if spec.gamma is not None:
        evolve_kwargs["gamma"] = spec.gamma
    if spec.threshold is not None:
        evolve_kwargs["threshold"] = spec.threshold
    if spec.tree_params is not None:
        evolve_kwargs["tree_params"] = spec.tree_params
    evolve_vm = EvolvableVM(app, **evolve_kwargs) if "evolve" in spec.scenarios else None
    rep_vm = RepVM(app, config=spec.config, jit=jit) if "rep" in spec.scenarios else None

    outcomes: dict[str, list] = {scenario: [] for scenario in spec.scenarios}
    events: list[dict] = []
    model_summary: dict | None = None

    # Stateful scenarios must replay the prefix [0, start) — planning
    # never splits them, so start is always 0 for rep/evolve cells.
    for run_index in range(spec.start, spec.stop):
        input_index = spec.sequence[run_index]
        cmdline = inputs[input_index].cmdline
        for scenario in spec.scenarios:
            run_clock = time.perf_counter()
            if scenario == "default":
                outcome = run_default(
                    app, cmdline, config=spec.config, jit=jit, rng_seed=run_index
                )
            elif scenario == "rep":
                outcome = rep_vm.run(cmdline, rng_seed=run_index)
            elif scenario == "evolve":
                outcome = evolve_vm.run(cmdline, rng_seed=run_index)
            elif scenario == "phase":
                outcome = _run_phase(
                    app, cmdline, spec.config, jit, rng_seed=run_index
                )
            else:
                raise ValueError(f"unknown scenario {scenario!r}")
            outcomes[scenario].append(outcome)
            events.append(
                run_event(
                    benchmark=spec.benchmark,
                    scenario=scenario,
                    run_index=run_index,
                    input_index=input_index,
                    cmdline=cmdline,
                    rng_seed=run_index,
                    outcome=outcome,
                    wall_s=time.perf_counter() - run_clock,
                )
            )

    if evolve_vm is not None:
        model_summary = dict(evolve_vm.models.summary())
        model_summary["final_confidence"] = evolve_vm.confidence.value

    return {
        "outcomes": outcomes,
        "events": events,
        "model_summary": model_summary,
        "wall_s": time.perf_counter() - cell_clock,
    }


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

@dataclass
class SweepReport:
    """What a parallel sweep produced, beyond the results themselves."""

    results: list[ExperimentResult]
    cells_total: int = 0
    cells_cached: int = 0
    cells_executed: int = 0
    wall_s: float = 0.0
    parallel: bool = False

    def describe(self) -> str:
        mode = "parallel" if self.parallel else "inline"
        return (
            f"{self.cells_total} cell(s): {self.cells_cached} cached, "
            f"{self.cells_executed} executed ({mode}), "
            f"{self.wall_s:.2f}s wall"
        )


def _resolve_jobs(jobs: int | None) -> int:
    if jobs is not None:
        return max(1, jobs)
    return max(1, os.cpu_count() or 1)


def map_parallel(worker, items: list, jobs: int) -> tuple[list, bool]:
    """Apply picklable *worker* to every item, preferring a process pool.

    Returns ``(results, parallel)`` with results in item order. Falls back
    to in-process execution when the platform forbids multiprocessing
    (sandboxes without semaphore support), so callers always get results.
    The fuzz harness reuses this entry point for its iteration chunks.
    """
    if not items:
        return [], False
    if jobs > 1 and len(items) > 1:
        results: dict[int, object] = {}
        try:
            with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
                futures = {
                    pool.submit(worker, item): index
                    for index, item in enumerate(items)
                }
                not_done = set(futures)
                while not_done:
                    done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                    for future in done:
                        results[futures[future]] = future.result()
            return [results[index] for index in range(len(items))], True
        except (OSError, PermissionError, NotImplementedError):
            pass  # retry everything inline
    return [worker(item) for item in items], False


def _execute_pending(
    pending: list[tuple[int, CellSpec]], jobs: int
) -> tuple[dict[int, dict], bool]:
    """Run the uncached cells through :func:`map_parallel`."""
    results, parallel = map_parallel(
        execute_cell, [spec for _, spec in pending], jobs
    )
    return {
        index: payload
        for (index, _), payload in zip(pending, results)
    }, parallel


def run_sweep(
    benchmarks: list[Benchmark],
    *,
    jobs: int | None = None,
    seed: int = 0,
    runs: int | None = None,
    config: VMConfig = DEFAULT_CONFIG,
    scenarios: tuple[str, ...] = ("default", "rep", "evolve"),
    grain: str = "cell",
    chunk: int = DEFAULT_CHUNK,
    gamma: float | None = None,
    threshold: float | None = None,
    tree_params: TreeParams | None = None,
    telemetry: TelemetryLog | None = None,
    cache: ResultCache | None = None,
    jit_cache_dir: str | None = None,
) -> SweepReport:
    """Run the §V-B protocol for many benchmarks, fanned out over cells.

    Returns a :class:`SweepReport` whose ``results`` list parallels
    *benchmarks*; each :class:`ExperimentResult` is assembled in run order
    and is bitwise-identical to what the serial runner produces for the
    same arguments. ``evolve_vm``/``rep_vm`` are ``None`` (the live VMs
    stay in the workers); ``evolve_summary`` carries the model snapshot.
    """
    sweep_clock = time.perf_counter()
    plans: list[tuple[Benchmark, list[CellSpec]]] = []
    all_cells: list[CellSpec] = []
    for bench in benchmarks:
        cells = plan_cells(
            bench,
            seed=seed,
            runs=runs,
            config=config,
            scenarios=tuple(scenarios),
            grain=grain,
            chunk=chunk,
            gamma=gamma,
            threshold=threshold,
            tree_params=tree_params,
            jit_cache_dir=jit_cache_dir,
        )
        plans.append((bench, cells))
        all_cells.extend(cells)

    payloads: dict[int, dict] = {}
    pending: list[tuple[int, CellSpec]] = []
    cached = 0
    for index, spec in enumerate(all_cells):
        payload = cache.get(spec.cache_key()) if cache is not None else None
        if payload is not None:
            payloads[index] = payload
            cached += 1
            if telemetry is not None:
                telemetry.append(
                    cell_event(
                        "cache_hit",
                        spec.benchmark,
                        "+".join(spec.scenarios),
                        spec.start,
                        spec.stop,
                        cached=True,
                    )
                )
        else:
            pending.append((index, spec))

    executed, parallel = _execute_pending(pending, _resolve_jobs(jobs))
    for index, payload in executed.items():
        spec = all_cells[index]
        payloads[index] = payload
        if cache is not None:
            cache.put(spec.cache_key(), payload)
        if telemetry is not None:
            telemetry.extend(payload["events"])
            telemetry.append(
                cell_event(
                    "cell",
                    spec.benchmark,
                    "+".join(spec.scenarios),
                    spec.start,
                    spec.stop,
                    wall_s=payload["wall_s"],
                )
            )

    results: list[ExperimentResult] = []
    cursor = 0
    for bench, cells in plans:
        app, inputs = bench.build(seed=seed)
        sequence = list(cells[0].sequence)
        result = ExperimentResult(
            benchmark=bench.name, app=app, inputs=inputs, sequence=sequence
        )
        by_scenario: dict[str, list[tuple[int, list]]] = {}
        for offset, spec in enumerate(cells):
            payload = payloads[cursor + offset]
            for scenario, outs in payload["outcomes"].items():
                by_scenario.setdefault(scenario, []).append((spec.start, outs))
            if payload.get("model_summary") is not None:
                result.evolve_summary = payload["model_summary"]
        for scenario, pieces in by_scenario.items():
            ordered: list = []
            for _, outs in sorted(pieces, key=lambda item: item[0]):
                ordered.extend(outs)
            setattr(result, scenario, ordered)
        cursor += len(cells)
        results.append(result)

    return SweepReport(
        results=results,
        cells_total=len(all_cells),
        cells_cached=cached,
        cells_executed=len(pending),
        wall_s=time.perf_counter() - sweep_clock,
        parallel=parallel,
    )


def run_experiment_parallel(
    bench: Benchmark,
    *,
    jobs: int | None = None,
    seed: int = 0,
    runs: int | None = None,
    config: VMConfig = DEFAULT_CONFIG,
    scenarios: tuple[str, ...] = ("default", "rep", "evolve"),
    grain: str = "cell",
    gamma: float | None = None,
    threshold: float | None = None,
    tree_params: TreeParams | None = None,
    telemetry: TelemetryLog | None = None,
    cache: ResultCache | None = None,
    jit_cache_dir: str | None = None,
) -> ExperimentResult:
    """One benchmark through the parallel engine (the runner's ``jobs=N``
    path); results are identical to :func:`~.runner.run_experiment`."""
    report = run_sweep(
        [bench],
        jobs=jobs,
        seed=seed,
        runs=runs,
        config=config,
        scenarios=scenarios,
        grain=grain,
        gamma=gamma,
        threshold=threshold,
        tree_params=tree_params,
        telemetry=telemetry,
        cache=cache,
        jit_cache_dir=jit_cache_dir,
    )
    return report.results[0]
