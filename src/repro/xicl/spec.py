"""XICL specification model: the ``option`` and ``operand`` constructs.

A specification describes every component a legal command line may carry:

- **options** (``-n 5``, ``--echo``): flag name(s), value type, the feature
  extractors to apply (``attr``), a default used when absent, and whether
  the option consumes an argument;
- **operands** (positional arguments): a position range, type, extractors.

See :mod:`repro.xicl.parser` for the concrete syntax.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .errors import SpecValidationError

#: Position sentinel meaning "end of the command line".
END_POSITION = "$"


class ComponentType(enum.Enum):
    """Value type of an input component."""

    NUM = "num"    # numeric value
    BIN = "bin"    # boolean flag
    STR = "str"    # free string (categorical)
    FILE = "file"  # path to an input file


@dataclass(frozen=True)
class OptionSpec:
    """One ``option`` construct.

    Attributes:
        names: All aliases (e.g. ``('-e', '--echo')``); the first is
            canonical and prefixes extracted feature names.
        type: Component type.
        attrs: Feature-extractor names applied to the option's value.
        default: Value assumed when the option is absent.
        has_arg: Whether the option consumes a following argument.
    """

    names: tuple[str, ...]
    type: ComponentType
    attrs: tuple[str, ...] = ("VAL",)
    default: str = ""
    has_arg: bool = True

    def __post_init__(self) -> None:
        if not self.names:
            raise SpecValidationError("option requires at least one name")
        for name in self.names:
            if not name.startswith("-"):
                raise SpecValidationError(
                    f"option name {name!r} must start with '-'"
                )
        if not self.attrs:
            raise SpecValidationError(f"option {self.canonical}: empty attr list")
        if self.type is ComponentType.BIN and self.has_arg:
            raise SpecValidationError(
                f"option {self.canonical}: BIN options take no argument"
            )

    @property
    def canonical(self) -> str:
        return self.names[0]

    def matches(self, token: str) -> bool:
        return token in self.names


@dataclass(frozen=True)
class OperandSpec:
    """One ``operand`` construct covering a 1-based position range.

    ``position=(2, '$')`` covers positions 2 through the end; a single
    position is ``(k, k)``.
    """

    position: tuple[int | str, int | str]
    type: ComponentType
    attrs: tuple[str, ...] = ("VAL",)

    def __post_init__(self) -> None:
        start, end = self.position
        if not isinstance(start, int) or start < 1:
            raise SpecValidationError(
                f"operand start position must be a positive int, got {start!r}"
            )
        if end != END_POSITION and (not isinstance(end, int) or end < start):
            raise SpecValidationError(
                f"operand end position must be >= start or '$', got {end!r}"
            )
        if not self.attrs:
            raise SpecValidationError("operand: empty attr list")

    def covers(self, index: int, total: int) -> bool:
        """True if this construct covers the 1-based operand *index*."""
        start, end = self.position
        upper = total if end == END_POSITION else end
        return start <= index <= upper


@dataclass(frozen=True)
class XICLSpec:
    """A complete specification for one application."""

    options: tuple[OptionSpec, ...] = ()
    operands: tuple[OperandSpec, ...] = ()
    application: str = ""

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for option in self.options:
            for name in option.names:
                if name in seen:
                    raise SpecValidationError(f"duplicate option name {name!r}")
                seen.add(name)

    def option_for(self, token: str) -> OptionSpec | None:
        for option in self.options:
            if option.matches(token):
                return option
        return None

    def all_attrs(self) -> tuple[str, ...]:
        """Every extractor name referenced anywhere in the spec."""
        names: list[str] = []
        for option in self.options:
            names.extend(option.attrs)
        for operand in self.operands:
            names.extend(operand.attrs)
        return tuple(dict.fromkeys(names))
