"""Parser for XICL specification text.

Concrete syntax (one construct per ``{...}`` block, ``;``-separated
``key=value`` fields, ``:``-separated value lists, ``#`` comments) —
matching the paper's Figure 2::

    # route finder
    option  {name=-n; type=NUM; attr=VAL; default=1; has_arg=y}
    option  {name=-e:--echo; type=BIN; attr=VAL; default=0; has_arg=n}
    operand {position=1:$; type=FILE; attr=mNodes:mEdges}
"""

from __future__ import annotations

import re

from .errors import SpecSyntaxError, SpecValidationError
from .spec import (
    END_POSITION,
    ComponentType,
    OperandSpec,
    OptionSpec,
    XICLSpec,
)

_CONSTRUCT_RE = re.compile(
    r"(?P<kind>option|operand)\s*\{(?P<body>[^{}]*)\}", re.IGNORECASE
)

_VALID_OPTION_KEYS = {"name", "type", "attr", "default", "has_arg"}
_VALID_OPERAND_KEYS = {"position", "type", "attr"}


def _strip_comments(text: str) -> str:
    lines = []
    for line in text.splitlines():
        hash_pos = line.find("#")
        lines.append(line if hash_pos < 0 else line[:hash_pos])
    return "\n".join(lines)


def _line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def _parse_fields(body: str, kind: str, line: int) -> dict[str, str]:
    fields: dict[str, str] = {}
    for raw in body.split(";"):
        raw = raw.strip()
        if not raw:
            continue
        if "=" not in raw:
            raise SpecSyntaxError(f"malformed field {raw!r} in {kind}", line)
        key, _, value = raw.partition("=")
        key = key.strip().lower()
        value = value.strip()
        if key in fields:
            raise SpecSyntaxError(f"duplicate field {key!r} in {kind}", line)
        fields[key] = value
    valid = _VALID_OPTION_KEYS if kind == "option" else _VALID_OPERAND_KEYS
    unknown = set(fields) - valid
    if unknown:
        raise SpecSyntaxError(
            f"unknown field(s) {sorted(unknown)} in {kind}", line
        )
    return fields


def _parse_type(value: str, line: int) -> ComponentType:
    try:
        return ComponentType(value.strip().lower())
    except ValueError:
        raise SpecSyntaxError(f"unknown type {value!r}", line) from None


def _parse_bool(value: str, line: int) -> bool:
    lowered = value.strip().lower()
    if lowered in ("y", "yes", "true", "1"):
        return True
    if lowered in ("n", "no", "false", "0"):
        return False
    raise SpecSyntaxError(f"expected y/n, got {value!r}", line)


def _parse_position(value: str, line: int) -> tuple[int | str, int | str]:
    parts = value.split(":")

    def _one(part: str) -> int | str:
        part = part.strip()
        if part == END_POSITION:
            return END_POSITION
        try:
            return int(part)
        except ValueError:
            raise SpecSyntaxError(f"bad position {part!r}", line) from None

    if len(parts) == 1:
        pos = _one(parts[0])
        return (pos, pos)
    if len(parts) == 2:
        return (_one(parts[0]), _one(parts[1]))
    raise SpecSyntaxError(f"bad position spec {value!r}", line)


def parse_spec(text: str, application: str = "") -> XICLSpec:
    """Parse XICL specification *text* into an :class:`XICLSpec`."""
    stripped = _strip_comments(text)
    options: list[OptionSpec] = []
    operands: list[OperandSpec] = []
    consumed_spans: list[tuple[int, int]] = []
    for match in _CONSTRUCT_RE.finditer(stripped):
        line = _line_of(stripped, match.start())
        kind = match.group("kind").lower()
        fields = _parse_fields(match.group("body"), kind, line)
        consumed_spans.append(match.span())
        if kind == "option":
            if "name" not in fields:
                raise SpecSyntaxError("option requires a name field", line)
            names = tuple(
                name.strip() for name in fields["name"].split(":") if name.strip()
            )
            ctype = _parse_type(fields.get("type", "str"), line)
            attrs = tuple(
                attr.strip()
                for attr in fields.get("attr", "VAL").split(":")
                if attr.strip()
            )
            has_arg = (
                _parse_bool(fields["has_arg"], line)
                if "has_arg" in fields
                else ctype is not ComponentType.BIN
            )
            try:
                options.append(
                    OptionSpec(
                        names=names,
                        type=ctype,
                        attrs=attrs,
                        default=fields.get("default", ""),
                        has_arg=has_arg,
                    )
                )
            except SpecValidationError as exc:
                raise SpecSyntaxError(str(exc), line) from exc
        else:
            if "position" not in fields:
                raise SpecSyntaxError("operand requires a position field", line)
            ctype = _parse_type(fields.get("type", "str"), line)
            attrs = tuple(
                attr.strip()
                for attr in fields.get("attr", "VAL").split(":")
                if attr.strip()
            )
            try:
                operands.append(
                    OperandSpec(
                        position=_parse_position(fields["position"], line),
                        type=ctype,
                        attrs=attrs,
                    )
                )
            except SpecValidationError as exc:
                raise SpecSyntaxError(str(exc), line) from exc
    # Anything left over (besides whitespace) is a syntax error.
    leftover = stripped
    for start, end in sorted(consumed_spans, reverse=True):
        leftover = leftover[:start] + leftover[end:]
    residue = leftover.strip()
    if residue:
        first = residue.splitlines()[0].strip()
        raise SpecSyntaxError(f"unrecognized specification text: {first!r}")
    try:
        return XICLSpec(
            options=tuple(options), operands=tuple(operands), application=application
        )
    except SpecValidationError as exc:
        raise SpecSyntaxError(str(exc)) from exc
