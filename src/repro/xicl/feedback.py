"""Specification feedback: the VM advising the programmer (§VI).

The paper proposes letting the virtual machine "offer feedback to the
programmers for the refinement of the specifications". This module
implements that loop: given the learned per-method models and the
specification they were trained against, it reports

- **unused features** — attrs whose extracted features never appear in any
  model's splits (candidates to drop, or signs the attr is misdefined);
- **influential features** — ranked by how many method models split on
  them (worth keeping and refining);
- **constant features** — identical across all observed runs, typically
  options the user population never exercises (the trees ignore them
  automatically, but the spec author may want to know);
- a **coverage warning** when the models' overall quality is poor, which
  the paper attributes to missing important features.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .spec import XICLSpec


@dataclass(frozen=True)
class SpecFeedback:
    """The advice produced for one application's specification."""

    influential: tuple[tuple[str, int], ...]   # (feature, #models splitting)
    unused: tuple[str, ...]
    constant: tuple[str, ...]
    mean_cv_accuracy: float
    warnings: tuple[str, ...] = field(default=())

    def render(self) -> str:
        lines = ["XICL specification feedback"]
        if self.influential:
            lines.append("  influential features:")
            for name, count in self.influential:
                lines.append(f"    {name}  (split on by {count} method models)")
        if self.unused:
            lines.append("  never used by any model (drop or redefine?):")
            for name in self.unused:
                lines.append(f"    {name}")
        if self.constant:
            lines.append("  constant across all observed runs:")
            for name in self.constant:
                lines.append(f"    {name}")
        lines.append(f"  mean cross-validated model accuracy: {self.mean_cv_accuracy:.2f}")
        for warning in self.warnings:
            lines.append(f"  WARNING: {warning}")
        return "\n".join(lines)


#: CV accuracy below which the feedback suspects missing features.
LOW_ACCURACY = 0.6


def analyze_models(model_builder, spec: XICLSpec | None = None) -> SpecFeedback:
    """Produce :class:`SpecFeedback` from a trained
    :class:`~repro.core.model_builder.ModelBuilder`.

    *spec* is optional; when given, the warning text can reference its
    extractor names.
    """
    # Count, per feature, how many method models split on it.
    split_counts: dict[str, int] = {}
    observed_columns: list[str] = []
    constant: set[str] = set()
    varying: set[str] = set()
    for method in model_builder.method_names:
        model = model_builder.model_for(method)
        for feature in model.used_features():
            split_counts[feature] = split_counts.get(feature, 0) + 1
        ds = model.dataset
        for column in ds.columns:
            if column not in observed_columns:
                observed_columns.append(column)
            index = ds.column_index(column)
            values = {row.values[index] for row in ds.rows}
            if len(values) <= 1:
                constant.add(column)
            else:
                varying.add(column)
    constant -= varying

    influential = tuple(
        sorted(split_counts.items(), key=lambda kv: (-kv[1], kv[0]))
    )
    unused = tuple(
        name for name in observed_columns if name not in split_counts
    )
    accuracy = model_builder.mean_cv_accuracy()
    warnings: list[str] = []
    if model_builder.method_names and accuracy < LOW_ACCURACY:
        attr_hint = ""
        if spec is not None:
            attr_hint = (
                f" (spec attrs: {', '.join(spec.all_attrs())})"
            )
        warnings.append(
            "model quality is low; the specification may be missing an "
            "important input feature" + attr_hint
        )
    return SpecFeedback(
        influential=influential,
        unused=unused,
        constant=tuple(sorted(constant)),
        mean_cv_accuracy=accuracy,
        warnings=tuple(warnings),
    )
