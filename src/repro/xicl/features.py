"""Feature vectors: the output of XICL translation, the input of learning.

A :class:`FeatureVector` is an ordered mapping from feature names to typed
values. Feature *kind* (numeric vs. categorical) matters downstream: the
classification trees split numerics by threshold and categoricals by
equality — the separation the paper highlights as important for behaviour
modeling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FeatureKind(enum.Enum):
    NUMERIC = "numeric"
    CATEGORICAL = "categorical"


@dataclass(frozen=True, slots=True)
class Feature:
    """One named, typed feature value."""

    name: str
    value: object
    kind: FeatureKind

    def __post_init__(self) -> None:
        if self.kind is FeatureKind.NUMERIC and not isinstance(
            self.value, (int, float)
        ):
            raise TypeError(
                f"feature {self.name!r} is numeric but holds {self.value!r}"
            )


class FeatureVector:
    """An ordered, name-addressable collection of features.

    Appending a feature whose name already exists *replaces* its value in
    place (used by the runtime-value channel to refine features mid-run).
    """

    def __init__(self, features: list[Feature] | None = None):
        self._order: list[str] = []
        self._by_name: dict[str, Feature] = {}
        for feature in features or []:
            self.append(feature)

    def append(self, feature: Feature) -> None:
        if feature.name not in self._by_name:
            self._order.append(feature.name)
        self._by_name[feature.name] = feature

    def append_value(
        self, name: str, value: object, kind: FeatureKind | None = None
    ) -> None:
        if kind is None:
            kind = (
                FeatureKind.NUMERIC
                if isinstance(value, (int, float)) and not isinstance(value, bool)
                else FeatureKind.CATEGORICAL
            )
        self.append(Feature(name, value, kind))

    def extend(self, other: "FeatureVector") -> None:
        for feature in other:
            self.append(feature)

    def __iter__(self):
        return (self._by_name[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> object:
        return self._by_name[name].value

    def get(self, name: str, default: object = None) -> object:
        feature = self._by_name.get(name)
        return feature.value if feature is not None else default

    def kind_of(self, name: str) -> FeatureKind:
        return self._by_name[name].kind

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._order)

    def values(self) -> tuple:
        return tuple(self._by_name[name].value for name in self._order)

    def as_dict(self) -> dict[str, object]:
        return {name: self._by_name[name].value for name in self._order}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FeatureVector):
            return NotImplemented
        return self.as_dict() == other.as_dict() and self.names == other.names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{f.name}={f.value!r}" for f in self)
        return f"FeatureVector({inner})"
