"""XICL: the extensible input characterization language and translator.

Typical use::

    from repro.xicl import parse_spec, XICLTranslator, XFMethodRegistry

    spec = parse_spec('''
        option  {name=-n; type=NUM; attr=VAL; default=1; has_arg=y}
        option  {name=-e:--echo; type=BIN; attr=VAL; default=0; has_arg=n}
        operand {position=1:$; type=FILE; attr=mNodes:mEdges}
    ''')
    translator = XICLTranslator(spec, registry=my_registry)
    fvector = translator.build_fvector("-n 3 graph1")
"""

from .errors import (
    SpecSyntaxError,
    SpecValidationError,
    TranslationError,
    UnknownFeatureMethodError,
    XICLError,
)
from .features import Feature, FeatureKind, FeatureVector
from .feedback import LOW_ACCURACY, SpecFeedback, analyze_models
from .filesystem import InMemoryFileSystem, MemoryFile, OSFileSystem
from .methods import MetadataFeature, XFMethod, XFMethodRegistry, xf_method
from .parser import parse_spec
from .runtime_values import RuntimeValueChannel
from .spec import (
    END_POSITION,
    ComponentType,
    OperandSpec,
    OptionSpec,
    XICLSpec,
)
from .translator import XICLTranslator

__all__ = [
    "ComponentType",
    "END_POSITION",
    "Feature",
    "FeatureKind",
    "FeatureVector",
    "InMemoryFileSystem",
    "LOW_ACCURACY",
    "SpecFeedback",
    "analyze_models",
    "MemoryFile",
    "MetadataFeature",
    "OSFileSystem",
    "OperandSpec",
    "OptionSpec",
    "RuntimeValueChannel",
    "SpecSyntaxError",
    "SpecValidationError",
    "TranslationError",
    "UnknownFeatureMethodError",
    "XFMethod",
    "XFMethodRegistry",
    "XICLError",
    "XICLSpec",
    "XICLTranslator",
    "parse_spec",
    "xf_method",
]
