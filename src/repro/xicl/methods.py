"""Feature-extraction methods: XICL's extension point.

Every ``attr`` name in a specification resolves to an :class:`XFMethod`.
The predefined set (``VAL``, ``LEN``, ``SIZE``, ``LINES``, ``WORDS``)
covers common cases; programmers add their own by subclassing
:class:`XFMethod` (or decorating a function with :func:`xf_method`) and
registering it — the Python analogue of dropping an ``XFMethod``
implementation into the ``org.jikesrvm.xicl`` package, including the
``Class.forName``-style lookup by dotted import path.
"""

from __future__ import annotations

import importlib
from typing import Callable

from .errors import TranslationError, UnknownFeatureMethodError
from .features import Feature, FeatureKind, FeatureVector
from .filesystem import FileSystem


class XFMethod:
    """Base class for feature extractors.

    Subclasses implement :meth:`xfeature`, receiving the raw string value of
    one input component plus the resolver environment, and returning the
    extracted features. ``prefix`` names the component (e.g. ``-n`` or
    ``operand1``) so produced feature names are globally unique.
    """

    #: Registry name; subclasses override (defaults to the class name).
    name: str = ""

    def xfeature(
        self, value: str, prefix: str, fs: FileSystem
    ) -> FeatureVector:  # pragma: no cover - abstract
        raise NotImplementedError

    def _single(self, prefix: str, suffix: str, value, kind: FeatureKind) -> FeatureVector:
        return FeatureVector([Feature(f"{prefix}.{suffix}", value, kind)])


class _Val(XFMethod):
    """VAL: the component's value itself (numeric when it parses as one)."""

    name = "VAL"

    def xfeature(self, value: str, prefix: str, fs: FileSystem) -> FeatureVector:
        parsed: object
        kind = FeatureKind.CATEGORICAL
        try:
            parsed = int(value)
            kind = FeatureKind.NUMERIC
        except (TypeError, ValueError):
            try:
                parsed = float(value)
                kind = FeatureKind.NUMERIC
            except (TypeError, ValueError):
                parsed = value
        return self._single(prefix, "VAL", parsed, kind)


class _Len(XFMethod):
    """LEN: length of the component's string value."""

    name = "LEN"

    def xfeature(self, value: str, prefix: str, fs: FileSystem) -> FeatureVector:
        return self._single(prefix, "LEN", len(value or ""), FeatureKind.NUMERIC)


class _Size(XFMethod):
    """SIZE: byte size of the referenced file."""

    name = "SIZE"

    def xfeature(self, value: str, prefix: str, fs: FileSystem) -> FeatureVector:
        if not fs.exists(value):
            raise TranslationError(f"{prefix}: no such file {value!r}")
        return self._single(prefix, "SIZE", fs.size(value), FeatureKind.NUMERIC)


class _Lines(XFMethod):
    """LINES: line count of the referenced file (metadata-aware)."""

    name = "LINES"

    def xfeature(self, value: str, prefix: str, fs: FileSystem) -> FeatureVector:
        meta = fs.metadata(value) if fs.exists(value) else {}
        if "lines" in meta:
            count = meta["lines"]
        else:
            count = fs.read_text(value).count("\n") + 1 if fs.exists(value) else 0
        return self._single(prefix, "LINES", int(count), FeatureKind.NUMERIC)


class _Words(XFMethod):
    """WORDS: whitespace-token count of the referenced file (metadata-aware)."""

    name = "WORDS"

    def xfeature(self, value: str, prefix: str, fs: FileSystem) -> FeatureVector:
        meta = fs.metadata(value) if fs.exists(value) else {}
        if "words" in meta:
            count = meta["words"]
        else:
            count = len(fs.read_text(value).split()) if fs.exists(value) else 0
        return self._single(prefix, "WORDS", int(count), FeatureKind.NUMERIC)


class MetadataFeature(XFMethod):
    """Programmer-defined extractor reading one key from file metadata.

    The synthetic-benchmark analogue of a custom parser: a real ``mNodes``
    implementation would parse the graph file; synthetic inputs carry the
    parsed value in metadata. Falls back to parsing ``key=value`` lines in
    the file content when metadata lacks the key.
    """

    def __init__(self, name: str, key: str, default: float = 0.0):
        self.name = name
        self.key = key
        self.default = default

    def xfeature(self, value: str, prefix: str, fs: FileSystem) -> FeatureVector:
        if fs.exists(value):
            meta = fs.metadata(value)
            if self.key in meta:
                return self._single(
                    prefix, self.name, meta[self.key], FeatureKind.NUMERIC
                )
            try:
                text = fs.read_text(value)
            except TranslationError:
                text = ""
            for line in text.splitlines():
                if line.startswith(f"{self.key}="):
                    return self._single(
                        prefix,
                        self.name,
                        float(line.split("=", 1)[1]),
                        FeatureKind.NUMERIC,
                    )
        return self._single(prefix, self.name, self.default, FeatureKind.NUMERIC)


class _FunctionXFMethod(XFMethod):
    def __init__(self, name: str, fn: Callable[[str, str, FileSystem], FeatureVector]):
        self.name = name
        self._fn = fn

    def xfeature(self, value: str, prefix: str, fs: FileSystem) -> FeatureVector:
        return self._fn(value, prefix, fs)


class XFMethodRegistry:
    """Maps ``attr`` names to extractor instances.

    Mirrors the paper's ``xfMethodsMap`` + ``getMethod``: lookups hit the
    map first, then attempt a dynamic import of a dotted path (the
    ``Class.forName`` analogue), caching the result.
    """

    def __init__(self, include_predefined: bool = True):
        self._methods: dict[str, XFMethod] = {}
        if include_predefined:
            for cls in (_Val, _Len, _Size, _Lines, _Words):
                self.register(cls())

    def register(self, method: XFMethod) -> None:
        if not method.name:
            raise ValueError("XFMethod must carry a non-empty name")
        self._methods[method.name] = method

    def register_function(
        self, name: str, fn: Callable[[str, str, FileSystem], FeatureVector]
    ) -> None:
        self.register(_FunctionXFMethod(name, fn))

    def __contains__(self, name: str) -> bool:
        return name in self._methods

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._methods))

    def get(self, name: str) -> XFMethod:
        method = self._methods.get(name)
        if method is not None:
            return method
        # Class.forName analogue: "pkg.module.ClassName" imports and
        # instantiates, then caches under the requested name.
        if "." in name:
            module_name, _, attr = name.rpartition(".")
            try:
                module = importlib.import_module(module_name)
                cls = getattr(module, attr)
                instance = cls()
            except (ImportError, AttributeError, TypeError) as exc:
                raise UnknownFeatureMethodError(
                    f"cannot load feature method {name!r}: {exc}"
                ) from exc
            if not isinstance(instance, XFMethod):
                raise UnknownFeatureMethodError(
                    f"{name!r} is not an XFMethod implementation"
                )
            self._methods[name] = instance
            return instance
        raise UnknownFeatureMethodError(f"unknown feature method {name!r}")


def xf_method(name: str, registry: XFMethodRegistry):
    """Decorator registering a plain function as an XFMethod.

    The function receives ``(value, prefix, fs)`` and returns a
    :class:`FeatureVector`.
    """

    def deco(fn: Callable[[str, str, FileSystem], FeatureVector]):
        registry.register_function(name, fn)
        return fn

    return deco
