"""Runtime value passing: the ``updateV``/``done`` channel.

Applications can hand values computed during their own initialization (or
at interactive points) to the translator as input features, sparing the
extractor redundant work — the paper's
``XICLFeatureVector.updateV(mFeature, subV)`` / ``done()`` interface.

``update_v`` inserts or replaces features in the translator's current
vector; ``done`` signals that no more values will arrive, firing any
registered callbacks (the evolvable VM hooks prediction here, including
re-prediction at interactive points).
"""

from __future__ import annotations

from typing import Callable

from .features import FeatureKind, FeatureVector

DoneCallback = Callable[[FeatureVector], None]


class RuntimeValueChannel:
    """Mutable bridge between a running application and its feature vector."""

    def __init__(self, fvector: FeatureVector | None = None):
        self._fvector = fvector if fvector is not None else FeatureVector()
        self._done_callbacks: list[DoneCallback] = []
        self.done_count = 0

    @property
    def fvector(self) -> FeatureVector:
        return self._fvector

    def bind(self, fvector: FeatureVector) -> None:
        """Point the channel at a (new) feature vector."""
        self._fvector = fvector

    def on_done(self, callback: DoneCallback) -> None:
        self._done_callbacks.append(callback)

    def update_v(
        self, name: str, value: object, kind: FeatureKind | None = None
    ) -> None:
        """Insert or replace the feature *name* with *value*."""
        self._fvector.append_value(name, value, kind)

    def update_many(self, values: dict[str, object]) -> None:
        for name, value in values.items():
            self.update_v(name, value)

    def done(self) -> None:
        """No more values are coming; notify listeners (e.g. the predictor)."""
        self.done_count += 1
        for callback in self._done_callbacks:
            callback(self._fvector)
