"""XICL error types."""

from __future__ import annotations


class XICLError(Exception):
    """Base class for XICL failures."""


class SpecSyntaxError(XICLError):
    """The XICL specification text is malformed."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        super().__init__(f"{message} (line {line})" if line else message)


class SpecValidationError(XICLError):
    """The specification parsed but is semantically invalid."""


class TranslationError(XICLError):
    """A command line could not be translated against the specification."""


class UnknownFeatureMethodError(XICLError):
    """An ``attr`` referenced a feature-extraction method that is not
    registered and could not be imported."""
