"""The XICL translator: command line + specification → feature vector.

The translator determines the role of every component in an arbitrary
(legal) invocation and applies each component's feature-extraction methods,
producing a *well-formed* vector: fixed length for a given specification,
with defaults filled for absent options and empty-slot markers for absent
fixed-position operands.

Variable-arity operand ranges (``position=2:$``) are summarized into fixed
features: an operand count plus per-extractor aggregates (numeric features
sum across the covered operands; categoricals keep the first), so learning
downstream always sees vectors of one shape.
"""

from __future__ import annotations

import shlex

from .errors import TranslationError
from .features import FeatureKind, FeatureVector
from .filesystem import FileSystem, OSFileSystem
from .methods import XFMethodRegistry
from .runtime_values import RuntimeValueChannel
from .spec import END_POSITION, ComponentType, OperandSpec, OptionSpec, XICLSpec


def _is_number(token: str) -> bool:
    try:
        float(token)
    except ValueError:
        return False
    return True


class XICLTranslator:
    """Translates command lines for one application against one spec."""

    def __init__(
        self,
        spec: XICLSpec,
        registry: XFMethodRegistry | None = None,
        filesystem: FileSystem | None = None,
    ):
        self.spec = spec
        self.registry = registry if registry is not None else XFMethodRegistry()
        self.filesystem = filesystem if filesystem is not None else OSFileSystem()
        self.channel = RuntimeValueChannel()
        self._fvector = FeatureVector()

    @property
    def fvector(self) -> FeatureVector:
        """The most recently built (and possibly runtime-updated) vector."""
        return self._fvector

    # -- command line scanning -------------------------------------------------
    def _scan(self, tokens: list[str]) -> tuple[dict[str, str], list[str]]:
        """Split *tokens* into option values (by canonical name) and operands."""
        values: dict[str, str] = {}
        operands: list[str] = []
        i = 0
        operands_only = False
        while i < len(tokens):
            token = tokens[i]
            if operands_only:
                operands.append(token)
                i += 1
                continue
            if token == "--":
                operands_only = True
                i += 1
                continue
            option: OptionSpec | None = None
            inline_value: str | None = None
            if token.startswith("-") and not _is_number(token):
                option = self.spec.option_for(token)
                if option is None and "=" in token:
                    head, _, tail = token.partition("=")
                    option = self.spec.option_for(head)
                    if option is not None and not option.has_arg:
                        raise TranslationError(
                            f"option {head!r} does not take an argument"
                        )
                    inline_value = tail
                if option is None:
                    raise TranslationError(f"unknown option {token!r}")
            if option is None:
                operands.append(token)
                i += 1
                continue
            if option.has_arg:
                if inline_value is not None:
                    values[option.canonical] = inline_value
                else:
                    if i + 1 >= len(tokens):
                        raise TranslationError(
                            f"option {token!r} expects an argument"
                        )
                    values[option.canonical] = tokens[i + 1]
                    i += 1
            else:
                values[option.canonical] = "1"
            i += 1
        return values, operands

    # -- feature extraction ------------------------------------------------
    def _extract(self, attrs: tuple[str, ...], value: str, prefix: str) -> FeatureVector:
        out = FeatureVector()
        for attr in attrs:
            method = self.registry.get(attr)
            out.extend(method.xfeature(value, prefix, self.filesystem))
        return out

    def _operand_prefix(self, operand: OperandSpec) -> str:
        start, end = operand.position
        if start == end:
            return f"operand{start}"
        end_label = "end" if end == END_POSITION else str(end)
        return f"operands{start}_{end_label}"

    def _operand_features(
        self, operand: OperandSpec, operand_tokens: list[str]
    ) -> FeatureVector:
        start, end = operand.position
        total = len(operand_tokens)
        covered = [
            operand_tokens[i - 1]
            for i in range(1, total + 1)
            if operand.covers(i, total)
        ]
        prefix = self._operand_prefix(operand)
        if start == end:
            value = covered[0] if covered else ""
            return self._extract(operand.attrs, value, prefix)
        # Range construct: fixed-shape aggregate features.
        out = FeatureVector()
        out.append_value(f"{prefix}.count", len(covered), FeatureKind.NUMERIC)
        aggregate: dict[str, object] = {}
        kinds: dict[str, FeatureKind] = {}
        for value in covered:
            for feature in self._extract(operand.attrs, value, prefix):
                kinds[feature.name] = feature.kind
                if feature.kind is FeatureKind.NUMERIC:
                    aggregate[feature.name] = (
                        aggregate.get(feature.name, 0) + feature.value
                    )
                elif feature.name not in aggregate:
                    aggregate[feature.name] = feature.value
        if not covered:
            # Materialize zero-valued aggregates so the vector shape is
            # stable even when the range is empty.
            for attr in operand.attrs:
                aggregate.setdefault(f"{prefix}.{attr}", 0)
                kinds.setdefault(f"{prefix}.{attr}", FeatureKind.NUMERIC)
        for name, value in aggregate.items():
            out.append_value(name, value, kinds[name])
        return out

    def build_fvector(self, cmdline: str | list[str]) -> FeatureVector:
        """Translate *cmdline* into the application's feature vector.

        *cmdline* holds only the application's arguments (no program name),
        either as a shell-style string or a pre-split token list.
        """
        tokens = shlex.split(cmdline) if isinstance(cmdline, str) else list(cmdline)
        values, operands = self._scan(tokens)
        fvector = FeatureVector()
        for option in self.spec.options:
            value = values.get(option.canonical, option.default)
            if option.type is ComponentType.BIN and option.canonical not in values:
                value = option.default or "0"
            fvector.extend(self._extract(option.attrs, value, option.canonical))
        total = len(operands)
        uncovered = [
            i
            for i in range(1, total + 1)
            if not any(spec.covers(i, total) for spec in self.spec.operands)
        ]
        if uncovered:
            raise TranslationError(
                f"operand position(s) {uncovered} not covered by the specification"
            )
        for operand in self.spec.operands:
            fvector.extend(self._operand_features(operand, operands))
        self._fvector = fvector
        self.channel.bind(fvector)
        return fvector
