"""File abstraction backing FILE-typed input components.

Predefined extractors (``SIZE``, ``LINES``, ``WORDS``) and programmer-
defined ``XFMethod`` implementations often inspect input *files*. The
translator resolves paths through a :class:`FileSystem` so experiments can
supply thousands of synthetic inputs without touching the disk, while real
deployments use :class:`OSFileSystem` unchanged.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Protocol

from .errors import TranslationError


class FileSystem(Protocol):
    """Minimal file interface the extractors need."""

    def exists(self, path: str) -> bool: ...

    def size(self, path: str) -> int: ...

    def read_text(self, path: str) -> str: ...

    def metadata(self, path: str) -> dict[str, object]:
        """Out-of-band attributes (synthetic inputs carry parsed features
        here; real filesystems return an empty mapping)."""
        ...


class OSFileSystem:
    """The real filesystem."""

    def exists(self, path: str) -> bool:
        return os.path.isfile(path)

    def size(self, path: str) -> int:
        return os.stat(path).st_size

    def read_text(self, path: str) -> str:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            return handle.read()

    def metadata(self, path: str) -> dict[str, object]:
        return {}


@dataclass
class MemoryFile:
    """An in-memory file: explicit content and/or synthesized stats."""

    content: str | None = None
    size_bytes: int | None = None
    extra: dict[str, object] = field(default_factory=dict)

    @property
    def size(self) -> int:
        if self.size_bytes is not None:
            return self.size_bytes
        return len(self.content or "")


class InMemoryFileSystem:
    """A dict-backed :class:`FileSystem` for synthetic workloads."""

    def __init__(self, files: dict[str, MemoryFile] | None = None):
        self._files: dict[str, MemoryFile] = dict(files or {})

    def add(self, path: str, file: MemoryFile) -> None:
        self._files[path] = file

    def add_text(self, path: str, content: str, **extra: object) -> None:
        self._files[path] = MemoryFile(content=content, extra=dict(extra))

    def add_stub(self, path: str, size_bytes: int, **extra: object) -> None:
        """A file with stats/metadata but no materialized content."""
        self._files[path] = MemoryFile(size_bytes=size_bytes, extra=dict(extra))

    def exists(self, path: str) -> bool:
        return path in self._files

    def _entry(self, path: str) -> MemoryFile:
        entry = self._files.get(path)
        if entry is None:
            raise TranslationError(f"no such file: {path!r}")
        return entry

    def size(self, path: str) -> int:
        return self._entry(path).size

    def read_text(self, path: str) -> str:
        entry = self._entry(path)
        if entry.content is None:
            raise TranslationError(f"file {path!r} has no materialized content")
        return entry.content

    def metadata(self, path: str) -> dict[str, object]:
        return dict(self._entry(path).extra)
